// Package dht implements the distributed hash table substrate that KadoP
// (the paper's P2P XML index, [3]) builds on: a Chord-style ring over a
// 64-bit identifier space with consistent hashing, finger-based greedy
// routing (hop counts are the scalability measure of bench C9), key
// migration on membership changes, and join/leave notification hooks that
// feed the paper's areRegistered membership stream.
//
// The ring's state lives in one process — the routing *metric* (hops,
// per-node key placement) is simulated faithfully while transport is
// in-memory, consistent with the simnet substitution documented in
// DESIGN.md.
package dht

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// ID is a position on the ring.
type ID uint64

// HashID maps a string to its ring position.
func HashID(s string) ID {
	h := fnv.New64a()
	h.Write([]byte(s))
	return ID(h.Sum64())
}

// fingerBits is the identifier-space width: fingers are successors of
// n + 2^i for i < fingerBits.
const fingerBits = 64

// MembershipHook observes peers joining and leaving the ring.
type MembershipHook interface {
	NotifyJoin(peer string)
	NotifyLeave(peer string)
}

type node struct {
	id    ID
	name  string
	store map[string][]string
}

// Ring is a Chord-style DHT.
type Ring struct {
	mu    sync.RWMutex
	nodes []*node // sorted by id
	byKey map[string]*node
	hooks []MembershipHook

	lookups uint64
	hops    uint64
}

// New returns an empty ring.
func New() *Ring {
	return &Ring{byKey: make(map[string]*node)}
}

// OnMembership registers a membership hook.
func (r *Ring) OnMembership(h MembershipHook) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hooks = append(r.hooks, h)
}

// Size returns the number of nodes.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Nodes returns node names in ring order.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.nodes))
	for i, n := range r.nodes {
		out[i] = n.name
	}
	return out
}

// Join adds a peer to the ring, migrating the keys it now owns from its
// successor, and fires join hooks.
func (r *Ring) Join(name string) error {
	r.mu.Lock()
	if _, dup := r.byKey[name]; dup {
		r.mu.Unlock()
		return fmt.Errorf("dht: %s already joined", name)
	}
	n := &node{id: HashID(name), name: name, store: make(map[string][]string)}
	if prev := r.findByID(n.id); prev != nil {
		r.mu.Unlock()
		return fmt.Errorf("dht: id collision between %s and %s", name, prev.name)
	}
	idx := r.insertionPoint(n.id)
	r.nodes = append(r.nodes, nil)
	copy(r.nodes[idx+1:], r.nodes[idx:])
	r.nodes[idx] = n
	r.byKey[name] = n
	// The new node takes over keys in (predecessor, n] from its old
	// owner, the successor.
	if len(r.nodes) > 1 {
		succ := r.nodes[(idx+1)%len(r.nodes)]
		for k, vs := range succ.store {
			if r.ownerLocked(HashID(k)) == n {
				n.store[k] = vs
				delete(succ.store, k)
			}
		}
	}
	hooks := append([]MembershipHook(nil), r.hooks...)
	r.mu.Unlock()
	for _, h := range hooks {
		h.NotifyJoin(name)
	}
	return nil
}

// Leave removes a peer, migrating its keys to the new owner, and fires
// leave hooks.
func (r *Ring) Leave(name string) error {
	r.mu.Lock()
	n, ok := r.byKey[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("dht: %s is not a member", name)
	}
	delete(r.byKey, name)
	idx := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].id >= n.id })
	r.nodes = append(r.nodes[:idx], r.nodes[idx+1:]...)
	if len(r.nodes) > 0 {
		for k, vs := range n.store {
			owner := r.ownerLocked(HashID(k))
			owner.store[k] = append(owner.store[k], vs...)
		}
	}
	hooks := append([]MembershipHook(nil), r.hooks...)
	r.mu.Unlock()
	for _, h := range hooks {
		h.NotifyLeave(name)
	}
	return nil
}

func (r *Ring) findByID(id ID) *node {
	idx := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].id >= id })
	if idx < len(r.nodes) && r.nodes[idx].id == id {
		return r.nodes[idx]
	}
	return nil
}

func (r *Ring) insertionPoint(id ID) int {
	return sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].id >= id })
}

// ownerLocked returns the successor node of id (the key owner).
func (r *Ring) ownerLocked(id ID) *node {
	if len(r.nodes) == 0 {
		return nil
	}
	idx := r.insertionPoint(id)
	if idx == len(r.nodes) {
		idx = 0
	}
	return r.nodes[idx]
}

// Owner returns the name of the node owning a key.
func (r *Ring) Owner(key string) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := r.ownerLocked(HashID(key))
	if n == nil {
		return "", fmt.Errorf("dht: empty ring")
	}
	return n.name, nil
}

// Put appends a value under a key at the key's owner.
func (r *Ring) Put(key, value string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.ownerLocked(HashID(key))
	if n == nil {
		return fmt.Errorf("dht: empty ring")
	}
	n.store[key] = append(n.store[key], value)
	return nil
}

// Get returns all values stored under key and the routing hop count a
// real lookup from `from` would incur (greedy finger routing). An empty
// `from` starts at the first ring node.
func (r *Ring) Get(from, key string) ([]string, int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.nodes) == 0 {
		return nil, 0, fmt.Errorf("dht: empty ring")
	}
	target := HashID(key)
	start := r.nodes[0]
	if from != "" {
		if n, ok := r.byKey[from]; ok {
			start = n
		}
	}
	hops := r.routeLocked(start, target)
	owner := r.ownerLocked(target)
	r.lookups++
	r.hops += uint64(hops)
	vals := append([]string(nil), owner.store[key]...)
	return vals, hops, nil
}

// routeLocked simulates Chord greedy routing from start to the owner of
// target, returning the hop count. Each step jumps to the closest
// preceding finger, computed on demand from the ring (equivalent to
// fully-converged finger tables).
func (r *Ring) routeLocked(start *node, target ID) int {
	cur := start
	hops := 0
	for hops <= len(r.nodes) {
		// Done when target ∈ (cur, successor(cur)].
		succ := r.successorLocked(cur)
		if inHalfOpen(target, cur.id, succ.id) {
			if succ != cur {
				hops++
			}
			return hops
		}
		next := r.closestPrecedingLocked(cur, target)
		if next == cur {
			next = succ
		}
		cur = next
		hops++
	}
	return hops
}

func (r *Ring) successorLocked(n *node) *node {
	idx := r.insertionPoint(n.id)
	// idx points at n itself; successor is the next node.
	return r.nodes[(idx+1)%len(r.nodes)]
}

// closestPrecedingLocked returns the finger of n closest to (but
// preceding) target: the largest jump n can make without overshooting.
func (r *Ring) closestPrecedingLocked(n *node, target ID) *node {
	best := n
	for i := fingerBits - 1; i >= 0; i-- {
		fingerStart := n.id + (ID(1) << uint(i))
		f := r.ownerLocked(fingerStart)
		// f must lie strictly within (n, target) to make progress.
		if f != n && inOpen(f.id, n.id, target) {
			if best == n || inOpen(best.id, n.id, f.id) || best.id == f.id {
				best = f
			}
			return f
		}
	}
	return best
}

// inHalfOpen reports x ∈ (a, b] on the ring.
func inHalfOpen(x, a, b ID) bool {
	if a < b {
		return x > a && x <= b
	}
	if a > b {
		return x > a || x <= b
	}
	return true // a == b: single node owns everything
}

// inOpen reports x ∈ (a, b) on the ring.
func inOpen(x, a, b ID) bool {
	if a < b {
		return x > a && x < b
	}
	if a > b {
		return x > a || x < b
	}
	return x != a
}

// Stats returns cumulative lookup count and total hops.
func (r *Ring) Stats() (lookups, hops uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.lookups, r.hops
}

// KeysAt returns the number of keys stored on a node (placement check).
func (r *Ring) KeysAt(name string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if n, ok := r.byKey[name]; ok {
		return len(n.store)
	}
	return 0
}
