// Package dht implements the distributed hash table substrate that KadoP
// (the paper's P2P XML index, [3]) builds on: a Chord-style ring over a
// 64-bit identifier space with consistent hashing, finger-based greedy
// routing (hop counts are the scalability measure of bench C9), key
// migration on membership changes, and join/leave notification hooks that
// feed the paper's areRegistered membership stream.
//
// The ring's state lives in one process — the routing *metric* (hops,
// per-node key placement) is simulated faithfully while transport is
// in-memory, consistent with the simnet substitution documented in
// DESIGN.md.
package dht

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// ID is a position on the ring.
type ID uint64

// HashID maps a string to its ring position.
func HashID(s string) ID {
	h := fnv.New64a()
	h.Write([]byte(s))
	return ID(h.Sum64())
}

// fingerBits is the identifier-space width: fingers are successors of
// n + 2^i for i < fingerBits.
const fingerBits = 64

// MembershipHook observes peers joining and leaving the ring.
type MembershipHook interface {
	NotifyJoin(peer string)
	NotifyLeave(peer string)
}

type node struct {
	id    ID
	name  string
	store map[string][]string
}

// Ring is a Chord-style DHT.
type Ring struct {
	mu          sync.RWMutex
	nodes       []*node // sorted by id
	byKey       map[string]*node
	hooks       []MembershipHook
	replication int // copies per key: owner + replication-1 successors

	lookups uint64
	hops    uint64
}

// New returns an empty ring with no replication (one copy per key).
func New() *Ring {
	return &Ring{byKey: make(map[string]*node), replication: 1}
}

// SetReplication sets the number of copies kept per key (owner plus
// k-1 distinct successors) and rebalances existing keys. k < 1 is
// clamped to 1. Replication is what lets stream-definition lookups keep
// working when a node crashes (Fail) instead of leaving gracefully.
func (r *Ring) SetReplication(k int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if k < 1 {
		k = 1
	}
	r.replication = k
	r.rebalanceLocked(nil)
}

// Replication returns the configured copies per key.
func (r *Ring) Replication() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.replication
}

// OnMembership registers a membership hook.
func (r *Ring) OnMembership(h MembershipHook) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hooks = append(r.hooks, h)
}

// Size returns the number of nodes.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Nodes returns node names in ring order.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.nodes))
	for i, n := range r.nodes {
		out[i] = n.name
	}
	return out
}

// Join adds a peer to the ring, migrating the keys it now owns from its
// successor, and fires join hooks.
func (r *Ring) Join(name string) error {
	r.mu.Lock()
	if _, dup := r.byKey[name]; dup {
		r.mu.Unlock()
		return fmt.Errorf("dht: %s already joined", name)
	}
	n := &node{id: HashID(name), name: name, store: make(map[string][]string)}
	if prev := r.findByID(n.id); prev != nil {
		r.mu.Unlock()
		return fmt.Errorf("dht: id collision between %s and %s", name, prev.name)
	}
	idx := r.insertionPoint(n.id)
	r.nodes = append(r.nodes, nil)
	copy(r.nodes[idx+1:], r.nodes[idx:])
	r.nodes[idx] = n
	r.byKey[name] = n
	// The new node takes over the keys it now owns (and, with
	// replication, drops out-of-range copies from old replica sets).
	// Only keys stored in the neighborhood of the insertion point can be
	// affected, so the rebalance is local, not full-ring.
	r.neighborhoodRebalanceLocked(idx, nil)
	hooks := append([]MembershipHook(nil), r.hooks...)
	r.mu.Unlock()
	for _, h := range hooks {
		h.NotifyJoin(name)
	}
	return nil
}

// Leave removes a peer gracefully, migrating its keys to their new
// owners, and fires leave hooks.
func (r *Ring) Leave(name string) error {
	return r.remove(name, true)
}

// Fail removes a crashed peer: unlike Leave, the node gets no chance to
// migrate its store — its copies are simply gone. Keys survive only if
// replication keeps other copies; the rebalance re-replicates them onto
// the new replica sets so lookups keep working during churn. Leave hooks
// fire (the membership stream reports the departure either way).
func (r *Ring) Fail(name string) error {
	return r.remove(name, false)
}

func (r *Ring) remove(name string, graceful bool) error {
	r.mu.Lock()
	n, ok := r.byKey[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("dht: %s is not a member", name)
	}
	delete(r.byKey, name)
	idx := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].id >= n.id })
	r.nodes = append(r.nodes[:idx], r.nodes[idx+1:]...)
	extra := n.store
	if !graceful {
		// A crashed node's copies are lost; surviving replicas in the
		// neighborhood re-seed the new replica sets.
		extra = nil
	}
	r.neighborhoodRebalanceLocked(idx, extra)
	hooks := append([]MembershipHook(nil), r.hooks...)
	r.mu.Unlock()
	for _, h := range hooks {
		h.NotifyLeave(name)
	}
	return nil
}

// rebalanceLocked reassigns every stored key to its current replica set:
// the owner plus replication-1 distinct successors. extra, when non-nil,
// contributes the store of a gracefully departing node. Values keep
// their order (readers rely on "latest wins"); identical values held by
// multiple replicas merge to one copy.
func (r *Ring) rebalanceLocked(extra map[string][]string) {
	if len(r.nodes) == 0 {
		return
	}
	merged := make(map[string][]string)
	for _, n := range r.nodes {
		for k, vs := range n.store {
			merged[k] = mergeVals(merged[k], vs)
		}
	}
	for k, vs := range extra {
		merged[k] = mergeVals(merged[k], vs)
	}
	for _, n := range r.nodes {
		n.store = make(map[string][]string)
	}
	for k, vs := range merged {
		for _, n := range r.replicaSetLocked(HashID(k)) {
			n.store[k] = append([]string(nil), vs...)
		}
	}
}

// neighborhoodRebalanceLocked re-places the keys affected by a
// membership change at ring position idx. A key's replica set is a
// contiguous run of successors of its hash, so only keys whose window
// crosses the change point can gain or lose a holder, and their
// surviving copies live within replication-1 positions before idx or
// replication positions after it — the rest of the ring is untouched.
// extra contributes the store of a gracefully departed node.
func (r *Ring) neighborhoodRebalanceLocked(idx int, extra map[string][]string) {
	n := len(r.nodes)
	if n == 0 {
		return
	}
	k := r.replication
	if k > n {
		k = n
	}
	span := 2 * k
	if span > n {
		span = n
	}
	start := ((idx-(k-1))%n + n) % n
	merged := make(map[string][]string)
	scanned := make([]*node, 0, span)
	for i := 0; i < span; i++ {
		nd := r.nodes[(start+i)%n]
		scanned = append(scanned, nd)
		for key, vs := range nd.store {
			merged[key] = mergeVals(merged[key], vs)
		}
	}
	for key, vs := range extra {
		merged[key] = mergeVals(merged[key], vs)
	}
	for key, vs := range merged {
		desired := r.replicaSetLocked(HashID(key))
		inDesired := make(map[*node]bool, len(desired))
		for _, d := range desired {
			inDesired[d] = true
			d.store[key] = append([]string(nil), vs...)
		}
		for _, s := range scanned {
			if !inDesired[s] {
				delete(s.store, key)
			}
		}
	}
}

// mergeVals appends the values of src not already in dst, preserving
// order.
func mergeVals(dst, src []string) []string {
	seen := make(map[string]bool, len(dst))
	for _, v := range dst {
		seen[v] = true
	}
	for _, v := range src {
		if !seen[v] {
			dst = append(dst, v)
			seen[v] = true
		}
	}
	return dst
}

// replicaSetLocked returns the nodes holding a key: its owner and the
// next replication-1 distinct successors.
func (r *Ring) replicaSetLocked(id ID) []*node {
	if len(r.nodes) == 0 {
		return nil
	}
	k := r.replication
	if k > len(r.nodes) {
		k = len(r.nodes)
	}
	idx := r.insertionPoint(id)
	if idx == len(r.nodes) {
		idx = 0
	}
	out := make([]*node, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, r.nodes[(idx+i)%len(r.nodes)])
	}
	return out
}

func (r *Ring) findByID(id ID) *node {
	idx := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].id >= id })
	if idx < len(r.nodes) && r.nodes[idx].id == id {
		return r.nodes[idx]
	}
	return nil
}

func (r *Ring) insertionPoint(id ID) int {
	return sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].id >= id })
}

// ownerLocked returns the successor node of id (the key owner).
func (r *Ring) ownerLocked(id ID) *node {
	if len(r.nodes) == 0 {
		return nil
	}
	idx := r.insertionPoint(id)
	if idx == len(r.nodes) {
		idx = 0
	}
	return r.nodes[idx]
}

// Owner returns the name of the node owning a key.
func (r *Ring) Owner(key string) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := r.ownerLocked(HashID(key))
	if n == nil {
		return "", fmt.Errorf("dht: empty ring")
	}
	return n.name, nil
}

// Put appends a value under a key at the key's owner and, with
// replication enabled, at the replica successors.
func (r *Ring) Put(key, value string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	set := r.replicaSetLocked(HashID(key))
	if len(set) == 0 {
		return fmt.Errorf("dht: empty ring")
	}
	for _, n := range set {
		n.store[key] = append(n.store[key], value)
	}
	return nil
}

// Set replaces the values stored under a key with the single given
// value, at the owner and every replica successor — the latest-wins
// single-record keys (operator checkpoints) that would otherwise grow
// one appended copy per write.
func (r *Ring) Set(key, value string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	set := r.replicaSetLocked(HashID(key))
	if len(set) == 0 {
		return fmt.Errorf("dht: empty ring")
	}
	for _, n := range set {
		n.store[key] = []string{value}
	}
	return nil
}

// Holders returns the names of the nodes whose store currently holds the
// key, in ring order — the replica-placement introspection the
// re-replication tests use.
func (r *Ring) Holders(key string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for _, n := range r.nodes {
		if len(n.store[key]) > 0 {
			out = append(out, n.name)
		}
	}
	return out
}

// Get returns all values stored under key and the routing hop count a
// real lookup from `from` would incur (greedy finger routing). An empty
// `from` starts at the first ring node.
func (r *Ring) Get(from, key string) ([]string, int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.nodes) == 0 {
		return nil, 0, fmt.Errorf("dht: empty ring")
	}
	target := HashID(key)
	start := r.nodes[0]
	if from != "" {
		if n, ok := r.byKey[from]; ok {
			start = n
		}
	}
	hops := r.routeLocked(start, target)
	owner := r.ownerLocked(target)
	r.lookups++
	r.hops += uint64(hops)
	vals := append([]string(nil), owner.store[key]...)
	if len(vals) == 0 && r.replication > 1 {
		// Owner miss (e.g. mid-churn before a rebalance): one extra hop
		// to a replica successor still answers the lookup.
		for _, n := range r.replicaSetLocked(target)[1:] {
			if len(n.store[key]) > 0 {
				vals = append(vals, n.store[key]...)
				hops++
				r.hops++
				break
			}
		}
	}
	return vals, hops, nil
}

// routeLocked simulates Chord greedy routing from start to the owner of
// target, returning the hop count. Each step jumps to the closest
// preceding finger, computed on demand from the ring (equivalent to
// fully-converged finger tables).
func (r *Ring) routeLocked(start *node, target ID) int {
	cur := start
	hops := 0
	for hops <= len(r.nodes) {
		// Done when target ∈ (cur, successor(cur)].
		succ := r.successorLocked(cur)
		if inHalfOpen(target, cur.id, succ.id) {
			if succ != cur {
				hops++
			}
			return hops
		}
		next := r.closestPrecedingLocked(cur, target)
		if next == cur {
			next = succ
		}
		cur = next
		hops++
	}
	return hops
}

func (r *Ring) successorLocked(n *node) *node {
	idx := r.insertionPoint(n.id)
	// idx points at n itself; successor is the next node.
	return r.nodes[(idx+1)%len(r.nodes)]
}

// closestPrecedingLocked returns the finger of n closest to (but
// preceding) target: the largest jump n can make without overshooting.
func (r *Ring) closestPrecedingLocked(n *node, target ID) *node {
	best := n
	for i := fingerBits - 1; i >= 0; i-- {
		fingerStart := n.id + (ID(1) << uint(i))
		f := r.ownerLocked(fingerStart)
		// f must lie strictly within (n, target) to make progress.
		if f != n && inOpen(f.id, n.id, target) {
			if best == n || inOpen(best.id, n.id, f.id) || best.id == f.id {
				best = f
			}
			return f
		}
	}
	return best
}

// inHalfOpen reports x ∈ (a, b] on the ring.
func inHalfOpen(x, a, b ID) bool {
	if a < b {
		return x > a && x <= b
	}
	if a > b {
		return x > a || x <= b
	}
	return true // a == b: single node owns everything
}

// inOpen reports x ∈ (a, b) on the ring.
func inOpen(x, a, b ID) bool {
	if a < b {
		return x > a && x < b
	}
	if a > b {
		return x > a || x < b
	}
	return x != a
}

// Stats returns cumulative lookup count and total hops.
func (r *Ring) Stats() (lookups, hops uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.lookups, r.hops
}

// KeysAt returns the number of keys stored on a node (placement check).
func (r *Ring) KeysAt(name string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if n, ok := r.byKey[name]; ok {
		return len(n.store)
	}
	return 0
}
