package dht

import (
	"fmt"
	"testing"
)

// boundedRing builds a bounded-load ring loaded far beyond the per-node
// cap, so many keys' primaries sit past full successors and reads pay
// scan hops.
func boundedRing(t testing.TB, members, keys int, cache bool) *Ring {
	t.Helper()
	r := New()
	r.SetReplication(2)
	r.SetVirtual(16)
	r.SetLoadBound(1.2) // tight bound: placement skips often
	if cache {
		r.EnableReadCache()
	}
	for i := 0; i < members; i++ {
		if err := r.Join(fmt.Sprintf("m%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < keys; i++ {
		if err := r.Set(fmt.Sprintf("ckpt|t%d|op%d", i/3, i%3), "v"); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

// TestReadCacheShavesScanHops: the second read of a key from the same
// reader skips the successor scan — strictly fewer total hops than the
// same reads uncached, with identical values.
func TestReadCacheShavesScanHops(t *testing.T) {
	const members, keys, rounds = 12, 120, 3
	read := func(r *Ring) (totalHops int) {
		for round := 0; round < rounds; round++ {
			for i := 0; i < keys; i++ {
				key := fmt.Sprintf("ckpt|t%d|op%d", i/3, i%3)
				vals, hops, err := r.Get("m0", key)
				if err != nil || len(vals) == 0 {
					t.Fatalf("read %s: vals=%v err=%v", key, vals, err)
				}
				totalHops += hops
			}
		}
		return totalHops
	}
	plain := read(boundedRing(t, members, keys, false))
	cached := read(boundedRing(t, members, keys, true))
	if cached >= plain {
		t.Errorf("cached reads cost %d hops, uncached %d — no win", cached, plain)
	}
	r := boundedRing(t, members, keys, true)
	read(r)
	if r.ReadCacheHits() == 0 {
		t.Error("no cache hits recorded")
	}
}

// TestReadCacheInvalidatedOnMembershipChange: a join (and a failure)
// wipes the cached locations; subsequent reads still resolve correctly
// against the re-placed keys.
func TestReadCacheInvalidatedOnMembershipChange(t *testing.T) {
	r := boundedRing(t, 8, 60, true)
	keys := make([]string, 0, 20)
	for i := 0; i < 20; i++ {
		keys = append(keys, fmt.Sprintf("ckpt|t%d|op%d", i/3, i%3))
	}
	for _, k := range keys { // warm
		if _, _, err := r.Get("m0", k); err != nil {
			t.Fatal(err)
		}
	}
	hitsBefore := 0
	for _, k := range keys {
		if _, _, err := r.Get("m0", k); err != nil {
			t.Fatal(err)
		}
		hitsBefore++
	}
	if r.ReadCacheHits() == 0 {
		t.Fatal("warm reads produced no hits")
	}
	if err := r.Join("late"); err != nil {
		t.Fatal(err)
	}
	// Placement re-ran: every cached location was dropped, and every key
	// still resolves (no stale holder is trusted).
	for _, k := range keys {
		vals, _, err := r.Get("m0", k)
		if err != nil || len(vals) == 0 {
			t.Errorf("post-join read of %s: vals=%v err=%v", k, vals, err)
		}
	}
	if err := r.Fail("m3"); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		vals, _, err := r.Get("m0", k)
		if err != nil || len(vals) == 0 {
			t.Errorf("post-fail read of %s: vals=%v err=%v", k, vals, err)
		}
	}
}

// TestReadCachePerReader: readers keep independent caches — one
// reader's warm route never short-circuits another's first scan.
func TestReadCachePerReader(t *testing.T) {
	r := boundedRing(t, 8, 30, true)
	if _, _, err := r.Get("m0", "ckpt|t0|op0"); err != nil {
		t.Fatal(err)
	}
	h0 := r.ReadCacheHits()
	if _, _, err := r.Get("m1", "ckpt|t0|op0"); err != nil {
		t.Fatal(err)
	}
	if r.ReadCacheHits() != h0 {
		t.Error("a different reader hit the first reader's cache entry")
	}
	if _, _, err := r.Get("m0", "ckpt|t0|op0"); err != nil {
		t.Fatal(err)
	}
	if r.ReadCacheHits() != h0+1 {
		t.Error("the warming reader did not hit its own entry")
	}
}
