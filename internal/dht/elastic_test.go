package dht

import (
	"fmt"
	"sync"
	"testing"
)

func elasticRing(t *testing.T, n int) *Ring {
	t.Helper()
	r := New()
	for i := 0; i < n; i++ {
		if err := r.Join(fmt.Sprintf("n%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func putKeys(t *testing.T, r *Ring, k int) {
	t.Helper()
	for i := 0; i < k; i++ {
		if err := r.Set(fmt.Sprintf("ckpt|task-%d|op-%d", i/3, i%3), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
}

func maxMinPrimaries(r *Ring) (max, min int) {
	min = -1
	for _, n := range r.Nodes() {
		p := r.PrimaryKeys(n)
		if p > max {
			max = p
		}
		if min < 0 || p < min {
			min = p
		}
	}
	return max, min
}

// TestVirtualNodesSpreadPrimaries: with one token per member a handful
// of members own most of the keyspace; fragmenting ownership into many
// tokens pulls the max primary count toward the mean.
func TestVirtualNodesSpreadPrimaries(t *testing.T) {
	const members, keys = 10, 240
	spread := func(virtual int) int {
		r := elasticRing(t, members)
		r.SetVirtual(virtual)
		putKeys(t, r, keys)
		max, _ := maxMinPrimaries(r)
		return max
	}
	classic := spread(1)
	fragmented := spread(64)
	if fragmented >= classic {
		t.Errorf("virtual nodes did not spread ownership: max primaries %d (v=64) vs %d (v=1)", fragmented, classic)
	}
	// 64 tokens over 10 members approximates uniform assignment: the max
	// share must be well under the single-token worst case and within a
	// small factor of the mean (24).
	if fragmented > 2*keys/members+keys/members {
		t.Errorf("max primaries with 64 tokens = %d, want near mean %d", fragmented, keys/members)
	}
}

// TestBoundedLoadCapsPrimaries: with SetLoadBound(c) no member may hold
// more than ceil(c·K/n) primary copies, whatever the hash says.
func TestBoundedLoadCapsPrimaries(t *testing.T) {
	const members, keys = 12, 48
	r := elasticRing(t, members)
	r.SetVirtual(16)
	r.SetLoadBound(2)
	putKeys(t, r, keys)
	max, _ := maxMinPrimaries(r)
	cap := 2 * keys / members // c·K/n = 8, exactly divisible
	if max > cap {
		t.Errorf("bounded-load max primaries = %d, want <= %d", max, cap)
	}
	// Every key must stay readable even when its primary was displaced
	// from the hash owner.
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("ckpt|task-%d|op-%d", i/3, i%3)
		vals, _, err := r.Get("", key)
		if err != nil || len(vals) == 0 {
			t.Fatalf("key %s unreadable under bounded placement: vals=%v err=%v", key, vals, err)
		}
	}
	// The bound survives a membership change: a join rebalances but must
	// not let any member exceed the (recomputed) cap.
	if err := r.Join("late"); err != nil {
		t.Fatal(err)
	}
	max, _ = maxMinPrimaries(r)
	if recap := 2*keys/13 + 1; max > recap {
		t.Errorf("post-join max primaries = %d, want <= ceil(2K/n) = %d", max, recap)
	}
}

// TestJoinHandoffIncremental: with fragmented ownership a single join
// hands off roughly K·r/n key copies, not an entire successor arc —
// the incremental-rebalance property that keeps elastic growth cheap.
func TestJoinHandoffIncremental(t *testing.T) {
	const members, keys = 8, 160
	r := elasticRing(t, members)
	r.SetVirtual(64)
	r.SetReplication(2)
	putKeys(t, r, keys)
	before := r.Handoffs()
	if err := r.Join("newcomer"); err != nil {
		t.Fatal(err)
	}
	moved := r.Handoffs() - before
	if moved == 0 {
		t.Fatal("a join moved no keys at all — the newcomer owns nothing")
	}
	// Expected movement is ~K·r/(n+1) ≈ 35 copies; a full-arc (or
	// full-ring) reshuffle would move hundreds. Allow 3x slack over the
	// expectation for hash variance.
	if limit := uint64(3 * keys * 2 / (members + 1)); moved > limit {
		t.Errorf("join moved %d copies, want <= %d (incremental handoff)", moved, limit)
	}
	// Everything is still readable after the handoff.
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("ckpt|task-%d|op-%d", i/3, i%3)
		if vals, _, err := r.Get("", key); err != nil || len(vals) == 0 {
			t.Fatalf("key %s lost in handoff: vals=%v err=%v", key, vals, err)
		}
	}
}

// TestHandoffRacesCheckpointPut: checkpoint writes racing a membership
// change must neither deadlock nor lose the latest record — after the
// churn settles, a final write is the value every reader sees.
func TestHandoffRacesCheckpointPut(t *testing.T) {
	r := elasticRing(t, 6)
	r.SetVirtual(32)
	r.SetReplication(2)
	r.SetLoadBound(2)
	const key = "ckpt|task-1|relay"
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			r.Set(key, fmt.Sprintf("ckpt-%d", i)) //nolint:errcheck // ring never empties
			i++
		}
	}()
	for j := 0; j < 20; j++ {
		name := fmt.Sprintf("flap-%d", j)
		if err := r.Join(name); err != nil {
			t.Fatal(err)
		}
		if j%2 == 0 {
			if err := r.Fail(name); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	if err := r.Set(key, "final"); err != nil {
		t.Fatal(err)
	}
	for _, from := range r.Nodes() {
		vals, _, err := r.Get(from, key)
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != 1 || vals[len(vals)-1] != "final" {
			t.Fatalf("reader at %s sees %v, want the final checkpoint", from, vals)
		}
	}
}

// TestServiceLoadCounters: puts and gets are attributed to the primary
// holder per key class, every member appears in the report, and
// ResetServiceLoad zeroes a finished warm-up.
func TestServiceLoadCounters(t *testing.T) {
	r := elasticRing(t, 5)
	if err := r.Set("ckpt|t|a", "v1"); err != nil {
		t.Fatal(err)
	}
	if err := r.Put("def|s1@p", "d"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Get("", "ckpt|t|a"); err != nil {
		t.Fatal(err)
	}
	ck := r.ServiceLoad("ckpt")
	if len(ck) != 5 {
		t.Fatalf("ServiceLoad reports %d members, want 5", len(ck))
	}
	var puts, gets uint64
	for _, l := range ck {
		puts += l.Puts
		gets += l.Gets
	}
	if puts != 1 || gets != 1 {
		t.Errorf("ckpt class: puts=%d gets=%d, want 1/1", puts, gets)
	}
	var defPuts uint64
	for _, l := range r.ServiceLoad("def") {
		defPuts += l.Puts
	}
	if defPuts != 1 {
		t.Errorf("def class: puts=%d, want 1 (classes must not bleed)", defPuts)
	}
	r.ResetServiceLoad()
	for name, l := range r.ServiceLoad("ckpt") {
		if l.Total() != 0 {
			t.Errorf("%s still loaded after reset: %+v", name, l)
		}
	}
}
