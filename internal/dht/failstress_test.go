package dht

import (
	"fmt"
	"testing"
)

// TestRepeatedFailReReplication is the churn stress for the replicated
// store: for a batch of keys, kill k-1 of the k replica holders in
// sequence (re-replication must re-seed the copies after every single
// failure), and assert that every key still resolves with its value and
// that the replica count recovers to k after each round.
func TestRepeatedFailReReplication(t *testing.T) {
	const k = 3
	const nodes = 10
	const keys = 25
	r := New()
	r.SetReplication(k)
	for i := 0; i < nodes; i++ {
		if err := r.Join(fmt.Sprintf("n%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < keys; i++ {
		if err := r.Put(fmt.Sprintf("key-%d", i), fmt.Sprintf("val-%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	for i := 0; i < keys; i++ {
		key, want := fmt.Sprintf("key-%d", i), fmt.Sprintf("val-%d", i)
		var failed []string
		// Kill k-1 holders one at a time. After each failure the
		// surviving copy must both answer lookups and re-seed the
		// replica set back to k.
		for round := 0; round < k-1; round++ {
			holders := r.Holders(key)
			if len(holders) != k {
				t.Fatalf("key %s: %d holders before round %d, want %d (%v)", key, len(holders), round, k, holders)
			}
			victim := holders[0]
			if err := r.Fail(victim); err != nil {
				t.Fatalf("fail %s: %v", victim, err)
			}
			failed = append(failed, victim)
			vals, _, err := r.Get("", key)
			if err != nil || len(vals) == 0 || vals[0] != want {
				t.Fatalf("key %s unresolvable after failing %v: vals=%v err=%v", key, failed, vals, err)
			}
			if got := r.Holders(key); len(got) != k {
				t.Fatalf("key %s: replica count %d after failing %v, want %d (re-replication failed)",
					key, len(got), failed, k)
			}
		}
		// The dead nodes rejoin (empty-handed, as after a crash) before
		// the next key's round, so the pool never shrinks below k+1.
		for _, name := range failed {
			if err := r.Join(name); err != nil {
				t.Fatalf("rejoin %s: %v", name, err)
			}
		}
	}

	// After the full gauntlet every key still resolves and is fully
	// replicated.
	for i := 0; i < keys; i++ {
		key, want := fmt.Sprintf("key-%d", i), fmt.Sprintf("val-%d", i)
		vals, _, err := r.Get("", key)
		if err != nil || len(vals) == 0 || vals[0] != want {
			t.Errorf("key %s lost after the gauntlet: vals=%v err=%v", key, vals, err)
		}
		if got := r.Holders(key); len(got) != k {
			t.Errorf("key %s: final replica count %d, want %d", key, len(got), k)
		}
	}
}

func TestSetReplacesAndReplicates(t *testing.T) {
	r := New()
	r.SetReplication(2)
	for _, n := range []string{"a", "b", "c", "d"} {
		if err := r.Join(n); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := r.Set("ck", fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	vals, _, err := r.Get("", "ck")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || vals[0] != "v4" {
		t.Fatalf("Set did not replace: vals=%v, want [v4]", vals)
	}
	if got := r.Holders("ck"); len(got) != 2 {
		t.Fatalf("Set placed %d copies, want 2 (%v)", len(got), got)
	}
	// The single record survives a holder crash like any replicated key.
	if err := r.Fail(r.Holders("ck")[0]); err != nil {
		t.Fatal(err)
	}
	vals, _, err = r.Get("", "ck")
	if err != nil || len(vals) != 1 || vals[0] != "v4" {
		t.Fatalf("Set record lost on holder crash: vals=%v err=%v", vals, err)
	}
}
