package dht

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func ringOf(t *testing.T, n int) *Ring {
	t.Helper()
	r := New()
	for i := 0; i < n; i++ {
		if err := r.Join(fmt.Sprintf("peer-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestJoinLeaveBasics(t *testing.T) {
	r := New()
	if err := r.Join("a"); err != nil {
		t.Fatal(err)
	}
	if err := r.Join("a"); err == nil {
		t.Error("duplicate join accepted")
	}
	if r.Size() != 1 {
		t.Errorf("size = %d", r.Size())
	}
	if err := r.Leave("ghost"); err == nil {
		t.Error("leaving a non-member accepted")
	}
	if err := r.Leave("a"); err != nil {
		t.Fatal(err)
	}
	if r.Size() != 0 {
		t.Errorf("size = %d", r.Size())
	}
}

func TestPutGetSingleNode(t *testing.T) {
	r := ringOf(t, 1)
	if err := r.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	vals, hops, err := r.Get("", "k")
	if err != nil || len(vals) != 1 || vals[0] != "v" {
		t.Fatalf("vals=%v err=%v", vals, err)
	}
	if hops != 0 {
		t.Errorf("hops = %d on single node", hops)
	}
}

func TestPutGetManyNodes(t *testing.T) {
	r := ringOf(t, 50)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		if err := r.Put(key, fmt.Sprintf("val-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		vals, _, err := r.Get("peer-0", key)
		if err != nil || len(vals) != 1 || vals[0] != fmt.Sprintf("val-%d", i) {
			t.Fatalf("key %s: vals=%v err=%v", key, vals, err)
		}
	}
}

func TestAppendSemantics(t *testing.T) {
	r := ringOf(t, 5)
	r.Put("k", "v1")
	r.Put("k", "v2")
	vals, _, _ := r.Get("", "k")
	if len(vals) != 2 {
		t.Errorf("vals = %v", vals)
	}
}

func TestKeyMigrationOnJoin(t *testing.T) {
	r := ringOf(t, 5)
	for i := 0; i < 100; i++ {
		r.Put(fmt.Sprintf("key-%d", i), "v")
	}
	// Join more nodes: every key must remain reachable and live at its
	// current owner.
	for i := 5; i < 20; i++ {
		if err := r.Join(fmt.Sprintf("peer-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for _, n := range r.Nodes() {
		total += r.KeysAt(n)
	}
	if total != 100 {
		t.Errorf("total keys after joins = %d", total)
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		vals, _, err := r.Get("", key)
		if err != nil || len(vals) != 1 {
			t.Fatalf("key %s lost after joins: %v %v", key, vals, err)
		}
		owner, _ := r.Owner(key)
		found := false
		for _, n := range r.Nodes() {
			if n == owner && r.KeysAt(n) > 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("owner %s of %s seems empty", owner, key)
		}
	}
}

func TestKeyMigrationOnLeave(t *testing.T) {
	r := ringOf(t, 20)
	for i := 0; i < 100; i++ {
		r.Put(fmt.Sprintf("key-%d", i), "v")
	}
	for i := 0; i < 15; i++ {
		if err := r.Leave(fmt.Sprintf("peer-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		vals, _, err := r.Get("", fmt.Sprintf("key-%d", i))
		if err != nil || len(vals) != 1 {
			t.Fatalf("key-%d lost after leaves: %v %v", i, vals, err)
		}
	}
}

func TestMembershipHooks(t *testing.T) {
	r := New()
	var events []string
	r.OnMembership(hookFuncs{
		join:  func(p string) { events = append(events, "join:"+p) },
		leave: func(p string) { events = append(events, "leave:"+p) },
	})
	r.Join("a")
	r.Join("b")
	r.Leave("a")
	want := "[join:a join:b leave:a]"
	if fmt.Sprint(events) != want {
		t.Errorf("events = %v", events)
	}
}

type hookFuncs struct {
	join, leave func(string)
}

func (h hookFuncs) NotifyJoin(p string)  { h.join(p) }
func (h hookFuncs) NotifyLeave(p string) { h.leave(p) }

func TestLookupHopsLogarithmic(t *testing.T) {
	// Chord's core property: expected hops ~ O(log n). With 512 nodes,
	// log2(n) = 9; the average must be well below a linear scan.
	r := ringOf(t, 512)
	totalHops := 0
	const lookups = 300
	for i := 0; i < lookups; i++ {
		_, hops, err := r.Get(fmt.Sprintf("peer-%d", i%512), fmt.Sprintf("probe-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		totalHops += hops
	}
	avg := float64(totalHops) / lookups
	if avg > 3*math.Log2(512) {
		t.Errorf("average hops %.1f exceeds 3·log2(n) = %.1f", avg, 3*math.Log2(512))
	}
	if avg < 1 {
		t.Errorf("average hops %.2f suspiciously low for 512 nodes", avg)
	}
	lk, hp := r.Stats()
	if lk != lookups || hp != uint64(totalHops) {
		t.Errorf("stats = %d/%d", lk, hp)
	}
}

func TestEmptyRingErrors(t *testing.T) {
	r := New()
	if err := r.Put("k", "v"); err == nil {
		t.Error("Put on empty ring accepted")
	}
	if _, _, err := r.Get("", "k"); err == nil {
		t.Error("Get on empty ring accepted")
	}
	if _, err := r.Owner("k"); err == nil {
		t.Error("Owner on empty ring accepted")
	}
}

func TestIntervalHelpers(t *testing.T) {
	// Non-wrapping.
	if !inHalfOpen(5, 1, 5) || inHalfOpen(1, 1, 5) || inHalfOpen(6, 1, 5) {
		t.Error("inHalfOpen non-wrap wrong")
	}
	// Wrapping.
	if !inHalfOpen(0, 10, 2) || !inHalfOpen(11, 10, 2) || inHalfOpen(5, 10, 2) {
		t.Error("inHalfOpen wrap wrong")
	}
	// Degenerate single node.
	if !inHalfOpen(7, 3, 3) {
		t.Error("single-node interval must contain everything")
	}
	if inOpen(3, 3, 3) || !inOpen(7, 3, 3) {
		t.Error("inOpen degenerate wrong")
	}
}

// Property: every key Get returns exactly what was Put, under any ring
// size, and the reported owner is consistent.
func TestQuickGetAfterPut(t *testing.T) {
	f := func(nNodes uint8, keys []string) bool {
		n := int(nNodes%30) + 1
		r := New()
		for i := 0; i < n; i++ {
			if err := r.Join(fmt.Sprintf("n%d", i)); err != nil {
				return false
			}
		}
		seen := make(map[string]int)
		for _, k := range keys {
			if k == "" {
				continue
			}
			r.Put(k, "v")
			seen[k]++
		}
		for k, count := range seen {
			vals, _, err := r.Get("", k)
			if err != nil || len(vals) != count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
