// Package stats provides the small measurement utilities the experiment
// harness reports with: streaming summaries, fixed-bucket histograms and
// aligned text tables for the regenerated figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary accumulates a stream of observations.
type Summary struct {
	n          int
	sum, sumSq float64
	min, max   float64
	values     []float64 // kept for percentiles
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sumSq += v * v
	s.values = append(s.values, v)
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the arithmetic mean (0 when empty).
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest observation (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// StdDev returns the population standard deviation.
func (s *Summary) StdDev() float64 {
	if s.n == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/float64(s.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by nearest-rank.
func (s *Summary) Percentile(p float64) float64 {
	if s.n == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p/100*float64(s.n))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= s.n {
		rank = s.n - 1
	}
	return sorted[rank]
}

// Table renders aligned rows for the experiment reports.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable builds a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; values are rendered with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }
