package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{4, 2, 8, 6} {
		s.Add(v)
	}
	if s.N() != 4 || s.Mean() != 5 || s.Min() != 2 || s.Max() != 8 {
		t.Errorf("summary = n%d mean%f min%f max%f", s.N(), s.Mean(), s.Min(), s.Max())
	}
	if got := s.StdDev(); math.Abs(got-math.Sqrt(5)) > 1e-9 {
		t.Errorf("stddev = %f", got)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.StdDev() != 0 || s.Percentile(50) != 0 {
		t.Error("empty summary should be all zeros")
	}
}

func TestPercentile(t *testing.T) {
	var s Summary
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(50); got != 50 {
		t.Errorf("p50 = %f", got)
	}
	if got := s.Percentile(99); got != 99 {
		t.Errorf("p99 = %f", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Errorf("p100 = %f", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("p0 = %f", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 12)
	tb.AddRow("b", 3.14159)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "3.142") {
		t.Errorf("out = %s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
	if tb.Rows() != 2 {
		t.Errorf("rows = %d", tb.Rows())
	}
}

func TestQuickMeanWithinBounds(t *testing.T) {
	f := func(vals []float64) bool {
		var s Summary
		ok := true
		for _, v := range vals {
			// Skip values whose running sum could overflow: the summary
			// targets measurement data, not the full float64 range.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e150 {
				continue
			}
			s.Add(v)
		}
		if s.N() > 0 {
			m := s.Mean()
			ok = m >= s.Min()-1e-9 && m <= s.Max()+1e-9
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
