package operators

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"p2pm/internal/stream"
	"p2pm/internal/xmltree"
)

func aggItem(key string, at time.Duration) stream.Item {
	n := xmltree.Elem("e")
	n.SetAttr("k", key)
	return stream.Item{Tree: n, Time: at}
}

func keyAttr(n *xmltree.Node) string { return n.AttrOr("k", "") }

// driveInline drains an operator run inline: Accept each item, then Flush.
func driveInline(p Proc, items []stream.Item) []stream.Item {
	var out []stream.Item
	emit := func(it stream.Item) { out = append(out, it) }
	for _, it := range items {
		p.Accept(0, it, emit)
	}
	p.Flush(emit)
	return out
}

func renderAll(items []stream.Item) []string {
	out := make([]string, len(items))
	for i, it := range items {
		out[i] = it.Tree.String()
	}
	return out
}

// TestAggTreeMatchesFlatGroup is the core invariant: a partial/merge
// tree over partitioned inputs emits exactly what the flat Group emits
// over the union — same records, same window-then-key order, same
// high-water timestamp.
func TestAggTreeMatchesFlatGroup(t *testing.T) {
	w := 10 * time.Second
	var all []stream.Item
	leaves := make([][]stream.Item, 3)
	for i := 0; i < 60; i++ {
		it := aggItem(fmt.Sprintf("key-%d", i%4), time.Duration(i)*time.Second)
		all = append(all, it)
		leaves[i%3] = append(leaves[i%3], it)
	}

	flat := &Group{Key: keyAttr, Window: w}
	want := driveInline(flat, all)

	// Two-level tree: 3 leaves → interior(2 leaves) + leaf 3 → final root.
	root := &MergeAgg{Final: true}
	interior := &MergeAgg{}
	var interiorOut, rootIn []stream.Item
	for i, leafItems := range leaves {
		leaf := &PartialAgg{Key: keyAttr, Window: w}
		partials := driveInline(leaf, leafItems)
		if leaf.PartialsEmitted() != uint64(len(partials)) {
			t.Fatalf("leaf %d emitted %d, counter says %d", i, len(partials), leaf.PartialsEmitted())
		}
		if i < 2 {
			for _, p := range partials {
				interior.Accept(0, p, func(it stream.Item) { interiorOut = append(interiorOut, it) })
			}
		} else {
			rootIn = append(rootIn, partials...)
		}
	}
	interior.Flush(func(it stream.Item) { interiorOut = append(interiorOut, it) })
	rootIn = append(rootIn, interiorOut...)
	got := driveInline(root, rootIn)

	if fmt.Sprint(renderAll(got)) != fmt.Sprint(renderAll(want)) {
		t.Errorf("tree output differs from flat Group:\n tree: %v\n flat: %v", renderAll(got), renderAll(want))
	}
	for i := range got {
		if got[i].Time != want[i].Time {
			t.Errorf("record %d time = %v, flat = %v", i, got[i].Time, want[i].Time)
		}
	}
	if root.Dropped() != 0 {
		t.Errorf("root dropped %d inputs", root.Dropped())
	}
}

// TestPartialAggWatermark checks the leaf's eager emission: a window's
// partial leaves as soon as observed time passes its end by one full
// window, and stragglers accumulate a fresh delta instead of being lost.
func TestPartialAggWatermark(t *testing.T) {
	w := 10 * time.Second
	p := &PartialAgg{Key: keyAttr, Window: w}
	var out []stream.Item
	emit := func(it stream.Item) { out = append(out, it) }

	p.Accept(0, aggItem("a", 1*time.Second), emit)
	p.Accept(0, aggItem("a", 5*time.Second), emit)
	if len(out) != 0 {
		t.Fatalf("emitted before watermark: %v", renderAll(out))
	}
	p.Accept(0, aggItem("b", 31*time.Second), emit) // watermark passes window 0
	if len(out) != 1 {
		t.Fatalf("watermark emission = %d items, want 1", len(out))
	}
	idx, _, counts, ok := parsePartial(aggOf(nil), out[0].Tree)
	if !ok || idx != 0 || counts["a"] == nil || counts["a"].Encode() != "2" {
		t.Fatalf("bad partial: %s", out[0].Tree)
	}
	// Straggler for window 0 after its partial left: a new delta.
	p.Accept(0, aggItem("a", 2*time.Second), emit)
	p.Flush(emit)
	total := 0
	for _, it := range out {
		if i, _, c, ok := parsePartial(aggOf(nil), it.Tree); ok && i == 0 && c["a"] != nil {
			n, err := strconv.Atoi(c["a"].Encode())
			if err != nil {
				t.Fatalf("bad count state %q", c["a"].Encode())
			}
			total += n
		}
	}
	if total != 3 {
		t.Errorf("window 0 'a' deltas sum to %d, want 3", total)
	}
}

// TestMergeAggIgnoresNonPartials: wiring bugs surface as a counter, not
// corrupted counts.
func TestMergeAggIgnoresNonPartials(t *testing.T) {
	m := &MergeAgg{Final: true}
	out := driveInline(m, []stream.Item{aggItem("x", time.Second)})
	if len(out) != 0 || m.Dropped() != 1 {
		t.Errorf("got %d outputs, dropped=%d; want 0 outputs, 1 dropped", len(out), m.Dropped())
	}
}

// TestAggSnapshotRoundTrip: mid-stream snapshots of both halves restore
// into fresh instances that finish identically.
func TestAggSnapshotRoundTrip(t *testing.T) {
	w := 10 * time.Second
	items := make([]stream.Item, 40)
	for i := range items {
		items[i] = aggItem(fmt.Sprintf("key-%d", i%3), time.Duration(i)*time.Second)
	}

	p := &PartialAgg{Key: keyAttr, Window: w}
	var head []stream.Item
	emitHead := func(it stream.Item) { head = append(head, it) }
	for _, it := range items[:25] {
		p.Accept(0, it, emitHead)
	}
	restored := &PartialAgg{Key: keyAttr, Window: w}
	if err := restored.Restore(p.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if restored.PartialsEmitted() != p.PartialsEmitted() {
		t.Errorf("emitted counter = %d, want %d", restored.PartialsEmitted(), p.PartialsEmitted())
	}
	var tailA, tailB []stream.Item
	for _, it := range items[25:] {
		p.Accept(0, it, func(x stream.Item) { tailA = append(tailA, x) })
		restored.Accept(0, it, func(x stream.Item) { tailB = append(tailB, x) })
	}
	p.Flush(func(x stream.Item) { tailA = append(tailA, x) })
	restored.Flush(func(x stream.Item) { tailB = append(tailB, x) })
	if fmt.Sprint(renderAll(tailA)) != fmt.Sprint(renderAll(tailB)) {
		t.Errorf("restored PartialAgg diverged:\n got %v\nwant %v", renderAll(tailB), renderAll(tailA))
	}

	m := &MergeAgg{Final: true}
	var sink []stream.Item
	for _, it := range append(head, tailA...) {
		m.Accept(0, it, func(x stream.Item) { sink = append(sink, x) })
	}
	m2 := &MergeAgg{Final: true}
	if err := m2.Restore(m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var outA, outB []stream.Item
	m.Flush(func(x stream.Item) { outA = append(outA, x) })
	m2.Flush(func(x stream.Item) { outB = append(outB, x) })
	if fmt.Sprint(renderAll(outA)) != fmt.Sprint(renderAll(outB)) {
		t.Errorf("restored MergeAgg diverged:\n got %v\nwant %v", renderAll(outB), renderAll(outA))
	}

	if err := (&PartialAgg{}).Restore(xmltree.Elem("nope")); err == nil {
		t.Error("PartialAgg.Restore accepted a foreign snapshot")
	}
	if err := (&MergeAgg{}).Restore(xmltree.Elem("nope")); err == nil {
		t.Error("MergeAgg.Restore accepted a foreign snapshot")
	}
}
