package operators

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"p2pm/internal/xmltree"
)

// Snapshotter is implemented by stateful processors whose accumulated
// state must survive a host crash: the checkpoint layer calls Snapshot
// inside Handle.Sync (serialized with Accept, so the cut is consistent),
// ships the XML through the stream-definition database's replicated DHT
// storage, and calls Restore on the re-deployed instance before it
// processes its first replayed item. Stateless processors simply don't
// implement it — a cold restart plus input replay reconstructs them.
type Snapshotter interface {
	Snapshot() *xmltree.Node
	Restore(*xmltree.Node) error
}

func durAttr(n *xmltree.Node, name string, d time.Duration) {
	n.SetAttr(name, strconv.FormatInt(int64(d), 10))
}

func attrDur(n *xmltree.Node, name string) (time.Duration, error) {
	v := n.AttrOr(name, "0")
	i, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("operators: bad %s in snapshot: %w", name, err)
	}
	return time.Duration(i), nil
}

// Snapshot implements Snapshotter: the duplicate-removal memory in
// arrival order.
func (d *Distinct) Snapshot() *xmltree.Node {
	n := xmltree.Elem("distinct")
	for _, e := range d.order {
		en := xmltree.Elem("e")
		en.SetAttr("k", e.key)
		durAttr(en, "t", e.t)
		n.Append(en)
	}
	return n
}

// Restore implements Snapshotter.
func (d *Distinct) Restore(n *xmltree.Node) error {
	if n == nil || n.Label != "distinct" {
		return fmt.Errorf("operators: not a Distinct snapshot")
	}
	d.seen = make(map[string]time.Duration)
	d.order = nil
	for _, en := range n.ChildrenByLabel("e") {
		key := en.AttrOr("k", "")
		t, err := attrDur(en, "t")
		if err != nil {
			return err
		}
		// Later entries overwrite: seen holds each key's newest timestamp,
		// exactly as repeated Accepts would have left it.
		d.seen[key] = t
		d.order = append(d.order, distinctEntry{key: key, t: t})
	}
	return nil
}

// Snapshot implements Snapshotter: both join histories (live entries
// only) plus the per-input watermarks.
func (j *Join) Snapshot() *xmltree.Node {
	j.init()
	n := xmltree.Elem("join")
	durAttr(n, "l0", j.lastSeen[0])
	durAttr(n, "l1", j.lastSeen[1])
	n.SetAttr("s0", strconv.FormatBool(j.seenInput[0]))
	n.SetAttr("s1", strconv.FormatBool(j.seenInput[1]))
	n.Append(snapshotHistory("left", j.left), snapshotHistory("right", j.right))
	return n
}

func snapshotHistory(label string, h *history) *xmltree.Node {
	n := xmltree.Elem(label)
	for _, e := range h.entries {
		if e.dead {
			continue
		}
		en := xmltree.Elem("h", e.tree.Clone())
		en.SetAttr("k", e.key)
		durAttr(en, "t", e.t)
		n.Append(en)
	}
	return n
}

// Restore implements Snapshotter.
func (j *Join) Restore(n *xmltree.Node) error {
	if n == nil || n.Label != "join" {
		return fmt.Errorf("operators: not a Join snapshot")
	}
	j.init()
	var err error
	if j.lastSeen[0], err = attrDur(n, "l0"); err != nil {
		return err
	}
	if j.lastSeen[1], err = attrDur(n, "l1"); err != nil {
		return err
	}
	j.seenInput[0] = n.AttrOr("s0", "") == "true"
	j.seenInput[1] = n.AttrOr("s1", "") == "true"
	for i, label := range []string{"left", "right"} {
		side := n.Child(label)
		if side == nil {
			return fmt.Errorf("operators: Join snapshot missing %s history", label)
		}
		h := newHistory()
		for _, en := range side.ChildrenByLabel("h") {
			t, err := attrDur(en, "t")
			if err != nil {
				return err
			}
			var tree *xmltree.Node
			for _, c := range en.Children {
				if !c.IsText() {
					tree = c
					break
				}
			}
			if tree == nil {
				return fmt.Errorf("operators: Join snapshot entry without a tree")
			}
			h.add(en.AttrOr("k", ""), tree, t)
		}
		if i == 0 {
			j.left = h
		} else {
			j.right = h
		}
	}
	return nil
}

// Snapshot implements Snapshotter: every open window's counts plus the
// watermark bookkeeping.
func (g *Group) Snapshot() *xmltree.Node {
	n := xmltree.Elem("groupstate")
	durAttr(n, "maxSeen", g.maxSeen)
	n.SetAttr("late", strconv.FormatUint(g.late, 10))
	n.SetAttr("agg", aggOf(g.Agg).Name())
	n.SetAttr("dropped", strconv.FormatUint(g.dropped, 10))
	appendWindows(n, g.wins)
	emitted := make([]int64, 0, len(g.emitted))
	for w := range g.emitted {
		emitted = append(emitted, w)
	}
	sort.Slice(emitted, func(i, j int) bool { return emitted[i] < emitted[j] })
	for _, w := range emitted {
		en := xmltree.Elem("emitted")
		en.SetAttr("idx", strconv.FormatInt(w, 10))
		n.Append(en)
	}
	return n
}

// Restore implements Snapshotter.
func (g *Group) Restore(n *xmltree.Node) error {
	if n == nil || n.Label != "groupstate" {
		return fmt.Errorf("operators: not a Group snapshot")
	}
	agg := aggOf(g.Agg)
	if got := n.AttrOr("agg", "count"); got != agg.Name() {
		return fmt.Errorf("operators: Group snapshot is %s, operator is %s", got, agg.Name())
	}
	var err error
	if g.maxSeen, err = attrDur(n, "maxSeen"); err != nil {
		return err
	}
	if g.late, err = strconv.ParseUint(n.AttrOr("late", "0"), 10, 64); err != nil {
		return fmt.Errorf("operators: bad late count in snapshot: %w", err)
	}
	if g.dropped, err = strconv.ParseUint(n.AttrOr("dropped", "0"), 10, 64); err != nil {
		return fmt.Errorf("operators: bad dropped count in snapshot: %w", err)
	}
	if g.wins, err = parseWindows(agg, n); err != nil {
		return err
	}
	g.emitted = make(map[int64]bool)
	for _, en := range n.ChildrenByLabel("emitted") {
		idx, err := strconv.ParseInt(en.AttrOr("idx", "0"), 10, 64)
		if err != nil {
			return fmt.Errorf("operators: bad emitted index in snapshot: %w", err)
		}
		g.emitted[idx] = true
	}
	return nil
}
