package operators

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"p2pm/internal/xmltree"
)

// Snapshotter is implemented by stateful processors whose accumulated
// state must survive a host crash: the checkpoint layer calls Snapshot
// inside Handle.Sync (serialized with Accept, so the cut is consistent),
// ships the XML through the stream-definition database's replicated DHT
// storage, and calls Restore on the re-deployed instance before it
// processes its first replayed item. Stateless processors simply don't
// implement it — a cold restart plus input replay reconstructs them.
type Snapshotter interface {
	Snapshot() *xmltree.Node
	Restore(*xmltree.Node) error
}

func durAttr(n *xmltree.Node, name string, d time.Duration) {
	n.SetAttr(name, strconv.FormatInt(int64(d), 10))
}

func attrDur(n *xmltree.Node, name string) (time.Duration, error) {
	v := n.AttrOr(name, "0")
	i, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("operators: bad %s in snapshot: %w", name, err)
	}
	return time.Duration(i), nil
}

// Snapshot implements Snapshotter: the duplicate-removal memory in
// arrival order.
func (d *Distinct) Snapshot() *xmltree.Node {
	n := xmltree.Elem("distinct")
	for _, e := range d.order {
		en := xmltree.Elem("e")
		en.SetAttr("k", e.key)
		durAttr(en, "t", e.t)
		n.Append(en)
	}
	return n
}

// Restore implements Snapshotter.
func (d *Distinct) Restore(n *xmltree.Node) error {
	if n == nil || n.Label != "distinct" {
		return fmt.Errorf("operators: not a Distinct snapshot")
	}
	d.seen = make(map[string]time.Duration)
	d.order = nil
	for _, en := range n.ChildrenByLabel("e") {
		key := en.AttrOr("k", "")
		t, err := attrDur(en, "t")
		if err != nil {
			return err
		}
		// Later entries overwrite: seen holds each key's newest timestamp,
		// exactly as repeated Accepts would have left it.
		d.seen[key] = t
		d.order = append(d.order, distinctEntry{key: key, t: t})
	}
	return nil
}

// Snapshot implements Snapshotter: both join histories (live entries
// only) plus the per-input watermarks.
func (j *Join) Snapshot() *xmltree.Node {
	j.init()
	n := xmltree.Elem("join")
	durAttr(n, "l0", j.lastSeen[0])
	durAttr(n, "l1", j.lastSeen[1])
	n.SetAttr("s0", strconv.FormatBool(j.seenInput[0]))
	n.SetAttr("s1", strconv.FormatBool(j.seenInput[1]))
	n.Append(snapshotHistory("left", j.left), snapshotHistory("right", j.right))
	return n
}

func snapshotHistory(label string, h *history) *xmltree.Node {
	n := xmltree.Elem(label)
	for _, e := range h.entries {
		if e.dead {
			continue
		}
		en := xmltree.Elem("h", e.tree.Clone())
		en.SetAttr("k", e.key)
		durAttr(en, "t", e.t)
		n.Append(en)
	}
	return n
}

// Restore implements Snapshotter.
func (j *Join) Restore(n *xmltree.Node) error {
	if n == nil || n.Label != "join" {
		return fmt.Errorf("operators: not a Join snapshot")
	}
	j.init()
	var err error
	if j.lastSeen[0], err = attrDur(n, "l0"); err != nil {
		return err
	}
	if j.lastSeen[1], err = attrDur(n, "l1"); err != nil {
		return err
	}
	j.seenInput[0] = n.AttrOr("s0", "") == "true"
	j.seenInput[1] = n.AttrOr("s1", "") == "true"
	for i, label := range []string{"left", "right"} {
		side := n.Child(label)
		if side == nil {
			return fmt.Errorf("operators: Join snapshot missing %s history", label)
		}
		h := newHistory()
		for _, en := range side.ChildrenByLabel("h") {
			t, err := attrDur(en, "t")
			if err != nil {
				return err
			}
			var tree *xmltree.Node
			for _, c := range en.Children {
				if !c.IsText() {
					tree = c
					break
				}
			}
			if tree == nil {
				return fmt.Errorf("operators: Join snapshot entry without a tree")
			}
			h.add(en.AttrOr("k", ""), tree, t)
		}
		if i == 0 {
			j.left = h
		} else {
			j.right = h
		}
	}
	return nil
}

// Snapshot implements Snapshotter: every open window's counts plus the
// watermark bookkeeping.
func (g *Group) Snapshot() *xmltree.Node {
	n := xmltree.Elem("groupstate")
	durAttr(n, "maxSeen", g.maxSeen)
	n.SetAttr("late", strconv.FormatUint(g.late, 10))
	for _, w := range g.sortedWindows() {
		wn := xmltree.Elem("w")
		wn.SetAttr("idx", strconv.FormatInt(w, 10))
		counts := g.wins[w]
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			kn := xmltree.Elem("k")
			kn.SetAttr("key", k)
			kn.SetAttr("n", strconv.Itoa(counts[k]))
			wn.Append(kn)
		}
		n.Append(wn)
	}
	for w := range g.emitted {
		en := xmltree.Elem("emitted")
		en.SetAttr("idx", strconv.FormatInt(w, 10))
		n.Append(en)
	}
	return n
}

// Restore implements Snapshotter.
func (g *Group) Restore(n *xmltree.Node) error {
	if n == nil || n.Label != "groupstate" {
		return fmt.Errorf("operators: not a Group snapshot")
	}
	var err error
	if g.maxSeen, err = attrDur(n, "maxSeen"); err != nil {
		return err
	}
	if g.late, err = strconv.ParseUint(n.AttrOr("late", "0"), 10, 64); err != nil {
		return fmt.Errorf("operators: bad late count in snapshot: %w", err)
	}
	g.wins = make(map[int64]map[string]int)
	g.emitted = make(map[int64]bool)
	for _, wn := range n.ChildrenByLabel("w") {
		idx, err := strconv.ParseInt(wn.AttrOr("idx", "0"), 10, 64)
		if err != nil {
			return fmt.Errorf("operators: bad window index in snapshot: %w", err)
		}
		counts := make(map[string]int)
		for _, kn := range wn.ChildrenByLabel("k") {
			c, err := strconv.Atoi(kn.AttrOr("n", "0"))
			if err != nil {
				return fmt.Errorf("operators: bad count in snapshot: %w", err)
			}
			counts[kn.AttrOr("key", "")] = c
		}
		g.wins[idx] = counts
	}
	for _, en := range n.ChildrenByLabel("emitted") {
		idx, err := strconv.ParseInt(en.AttrOr("idx", "0"), 10, 64)
		if err != nil {
			return fmt.Errorf("operators: bad emitted index in snapshot: %w", err)
		}
		g.emitted[idx] = true
	}
	return nil
}
