// In-network aggregation: the windowed Group operator decomposed into a
// fan-in tree (docs/AGGREGATION.md). PartialAgg is the leaf half — local
// pre-aggregation next to the event source, emitting per-window partial
// state instead of raw events — and MergeAgg is the interior half,
// combining partial states level by level until the root (Final) emits
// exactly the <group> records the flat operator would have. Counts are
// commutative deltas, so partials may arrive in any order, split across
// any number of emissions, and be re-merged after a replayed migration
// without changing the final windows.
package operators

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"p2pm/internal/stream"
	"p2pm/internal/xmltree"
)

// windowCounts is the shared per-window aggregation state: window index
// → group key → count.
type windowCounts map[int64]map[string]int

func (w windowCounts) add(idx int64, key string, n int) {
	m := w[idx]
	if m == nil {
		m = make(map[string]int)
		w[idx] = m
	}
	m[key] += n
}

func (w windowCounts) sortedWindows() []int64 {
	out := make([]int64, 0, len(w))
	for idx := range w {
		out = append(out, idx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedKeys(counts map[string]int) []string {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// partialTree renders one window's counts as a <partial> state tree:
//
//	<partial window="W" max="T"><k key="K" n="N"/>...</partial>
//
// max carries the emitter's high-water timestamp so merge watermarks
// (and the final records' virtual times) compose to the same value the
// flat operator would have observed.
func partialTree(idx int64, counts map[string]int, maxSeen time.Duration) *xmltree.Node {
	n := xmltree.Elem("partial")
	n.SetAttr("window", strconv.FormatInt(idx, 10))
	n.SetAttr("max", strconv.FormatInt(int64(maxSeen), 10))
	for _, k := range sortedKeys(counts) {
		kn := xmltree.Elem("k")
		kn.SetAttr("key", k)
		kn.SetAttr("n", strconv.Itoa(counts[k]))
		n.Append(kn)
	}
	return n
}

// parsePartial reads a <partial> back: window index, high-water mark,
// counts. Non-partial trees report ok=false (a merge input fed by
// something other than a partial stream is a wiring bug surfaced by the
// dropped counter, not a panic).
func parsePartial(t *xmltree.Node) (idx int64, max time.Duration, counts map[string]int, ok bool) {
	if t == nil || t.Label != "partial" {
		return 0, 0, nil, false
	}
	idx, err := strconv.ParseInt(t.AttrOr("window", "0"), 10, 64)
	if err != nil {
		return 0, 0, nil, false
	}
	m, err := strconv.ParseInt(t.AttrOr("max", "0"), 10, 64)
	if err != nil {
		return 0, 0, nil, false
	}
	counts = make(map[string]int)
	for _, kn := range t.ChildrenByLabel("k") {
		c, err := strconv.Atoi(kn.AttrOr("n", "0"))
		if err != nil {
			return 0, 0, nil, false
		}
		counts[kn.AttrOr("key", "")] += c
	}
	return idx, time.Duration(m), counts, true
}

// PartialAgg is the aggregation tree's leaf: it accumulates the same
// (window, key) counts as Group over its single local input, but emits
// <partial> delta states instead of final records — a window's partial
// is emitted when the watermark passes it (observed time one full window
// beyond its end, mirroring Group's EagerEmit rule) and whatever remains
// is emitted at Flush. Stragglers arriving after a window's partial was
// emitted simply accumulate a new delta: downstream merges add counts,
// so splitting a window across emissions never changes the final totals.
type PartialAgg struct {
	Key    func(*xmltree.Node) string
	Window time.Duration

	wins    windowCounts
	maxSeen time.Duration
	emitted uint64 // partial states emitted (diagnostics)
}

// Name implements Proc.
func (p *PartialAgg) Name() string { return "PartialAgg" }

// Accept implements Proc.
func (p *PartialAgg) Accept(_ int, it stream.Item, emit Emit) {
	if p.wins == nil {
		p.wins = make(windowCounts)
	}
	var idx int64
	if p.Window > 0 {
		idx = int64(it.Time / p.Window)
	}
	key := "*"
	if p.Key != nil {
		key = p.Key(it.Tree)
	}
	p.wins.add(idx, key, 1)
	if it.Time > p.maxSeen {
		p.maxSeen = it.Time
	}
	if p.Window > 0 {
		for _, w := range p.wins.sortedWindows() {
			if time.Duration(w+2)*p.Window <= p.maxSeen {
				p.emitWindow(w, emit)
			}
		}
	}
}

// Flush implements Proc.
func (p *PartialAgg) Flush(emit Emit) {
	for _, w := range p.wins.sortedWindows() {
		p.emitWindow(w, emit)
	}
}

// PartialsEmitted reports how many partial states left this leaf.
func (p *PartialAgg) PartialsEmitted() uint64 { return p.emitted }

func (p *PartialAgg) emitWindow(idx int64, emit Emit) {
	counts := p.wins[idx]
	if len(counts) == 0 {
		return
	}
	emit(stream.Item{Tree: partialTree(idx, counts, p.maxSeen), Time: p.maxSeen})
	delete(p.wins, idx)
	p.emitted++
}

// Snapshot implements Snapshotter: the open windows and the watermark.
func (p *PartialAgg) Snapshot() *xmltree.Node {
	n := xmltree.Elem("paggstate")
	durAttr(n, "maxSeen", p.maxSeen)
	n.SetAttr("emitted", strconv.FormatUint(p.emitted, 10))
	appendWindows(n, p.wins)
	return n
}

// Restore implements Snapshotter.
func (p *PartialAgg) Restore(n *xmltree.Node) error {
	if n == nil || n.Label != "paggstate" {
		return fmt.Errorf("operators: not a PartialAgg snapshot")
	}
	var err error
	if p.maxSeen, err = attrDur(n, "maxSeen"); err != nil {
		return err
	}
	if p.emitted, err = strconv.ParseUint(n.AttrOr("emitted", "0"), 10, 64); err != nil {
		return fmt.Errorf("operators: bad emitted count in snapshot: %w", err)
	}
	p.wins, err = parseWindows(n)
	return err
}

// MergeAgg is the aggregation tree's interior: it merges the <partial>
// window states of its children by adding counts. Interior nodes forward
// the merged partials at Flush (one state per window, so an interior's
// output volume is bounded by windows × keys regardless of how many
// events its subtree saw); the root — Final — emits the <group key
// count window> records of the flat Group operator instead, in the same
// window-then-key order and carrying the same composed high-water
// timestamp, so a tree deployment's results are byte-identical to the
// flat single-aggregator baseline.
type MergeAgg struct {
	// Final makes this node the tree root: it emits <group> records
	// instead of forwarding <partial> states.
	Final bool

	wins    windowCounts
	maxSeen time.Duration
	dropped uint64 // non-partial inputs ignored (wiring diagnostics)
}

// Name implements Proc.
func (m *MergeAgg) Name() string { return "MergeAgg" }

// Accept implements Proc.
func (m *MergeAgg) Accept(_ int, it stream.Item, emit Emit) {
	idx, max, counts, ok := parsePartial(it.Tree)
	if !ok {
		m.dropped++
		return
	}
	if m.wins == nil {
		m.wins = make(windowCounts)
	}
	for k, n := range counts {
		m.wins.add(idx, k, n)
	}
	if max > m.maxSeen {
		m.maxSeen = max
	}
}

// Flush implements Proc.
func (m *MergeAgg) Flush(emit Emit) {
	for _, w := range m.wins.sortedWindows() {
		counts := m.wins[w]
		if len(counts) == 0 {
			continue
		}
		if m.Final {
			for _, k := range sortedKeys(counts) {
				n := xmltree.Elem("group")
				n.SetAttr("key", k)
				n.SetAttr("count", strconv.Itoa(counts[k]))
				n.SetAttr("window", strconv.FormatInt(w, 10))
				emit(stream.Item{Tree: n, Time: m.maxSeen})
			}
		} else {
			emit(stream.Item{Tree: partialTree(w, counts, m.maxSeen), Time: m.maxSeen})
		}
		delete(m.wins, w)
	}
}

// Dropped reports inputs that were not partial states (zero in a
// correctly wired tree).
func (m *MergeAgg) Dropped() uint64 { return m.dropped }

// Snapshot implements Snapshotter: the merged open windows and watermark.
func (m *MergeAgg) Snapshot() *xmltree.Node {
	n := xmltree.Elem("maggstate")
	durAttr(n, "maxSeen", m.maxSeen)
	n.SetAttr("final", strconv.FormatBool(m.Final))
	appendWindows(n, m.wins)
	return n
}

// Restore implements Snapshotter.
func (m *MergeAgg) Restore(n *xmltree.Node) error {
	if n == nil || n.Label != "maggstate" {
		return fmt.Errorf("operators: not a MergeAgg snapshot")
	}
	var err error
	if m.maxSeen, err = attrDur(n, "maxSeen"); err != nil {
		return err
	}
	m.wins, err = parseWindows(n)
	return err
}

// appendWindows serializes windowCounts as <w idx><k key n/></w>
// children (the same shape Group's snapshot uses).
func appendWindows(n *xmltree.Node, wins windowCounts) {
	for _, w := range wins.sortedWindows() {
		wn := xmltree.Elem("w")
		wn.SetAttr("idx", strconv.FormatInt(w, 10))
		counts := wins[w]
		for _, k := range sortedKeys(counts) {
			kn := xmltree.Elem("k")
			kn.SetAttr("key", k)
			kn.SetAttr("n", strconv.Itoa(counts[k]))
			wn.Append(kn)
		}
		n.Append(wn)
	}
}

func parseWindows(n *xmltree.Node) (windowCounts, error) {
	wins := make(windowCounts)
	for _, wn := range n.ChildrenByLabel("w") {
		idx, err := strconv.ParseInt(wn.AttrOr("idx", "0"), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("operators: bad window index in snapshot: %w", err)
		}
		for _, kn := range wn.ChildrenByLabel("k") {
			c, err := strconv.Atoi(kn.AttrOr("n", "0"))
			if err != nil {
				return nil, fmt.Errorf("operators: bad count in snapshot: %w", err)
			}
			wins.add(idx, kn.AttrOr("key", ""), c)
		}
	}
	return wins, nil
}
