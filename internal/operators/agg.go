// In-network aggregation: the windowed Group operator decomposed into a
// fan-in tree (docs/AGGREGATION.md). PartialAgg is the leaf half — local
// pre-aggregation next to the event source, emitting per-window partial
// state instead of raw events — and MergeAgg is the interior half,
// combining partial states level by level until the root (Final) emits
// exactly the <group> records the flat operator would have. Window
// states are mergeable monoids (internal/monoid): commutative deltas
// that may arrive in any order, split across any number of emissions,
// and be re-merged after a replayed migration without changing the
// final windows. The historical count aggregate is the nil/default
// monoid; sum/min/max/avg/set are exact, distinct (HyperLogLog) and
// freq (Count-Min) are bounded-error sketches with constant-size state.
package operators

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"p2pm/internal/monoid"
	"p2pm/internal/stream"
	"p2pm/internal/xmltree"
)

// aggOf resolves the operator's aggregate function, defaulting to count
// so zero-valued operators keep the PR 5 behaviour.
func aggOf(m monoid.Monoid) monoid.Monoid {
	if m != nil {
		return m
	}
	c, _ := monoid.Lookup("count")
	return c
}

// windowStates is the shared per-window aggregation state: window index
// → group key → monoid state.
type windowStates map[int64]map[string]monoid.State

// put merges st into the (idx, key) slot, installing it directly when
// the slot is empty.
func (w windowStates) put(idx int64, key string, st monoid.State) error {
	m := w[idx]
	if m == nil {
		m = make(map[string]monoid.State)
		w[idx] = m
	}
	if cur := m[key]; cur != nil {
		return cur.Merge(st)
	}
	m[key] = st
	return nil
}

func (w windowStates) sortedWindows() []int64 {
	out := make([]int64, 0, len(w))
	for idx := range w {
		out = append(out, idx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedKeys(states map[string]monoid.State) []string {
	keys := make([]string, 0, len(states))
	for k := range states {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// partialTree renders one window's states as a <partial> delta tree:
//
//	<partial window="W" max="T" agg="FN"><k key="K" n="STATE"/>...</partial>
//
// max carries the emitter's high-water timestamp so merge watermarks
// (and the final records' virtual times) compose to the same value the
// flat operator would have observed; n carries the monoid's
// deterministic encoding (for count, the same bare decimal as ever).
func partialTree(agg monoid.Monoid, idx int64, states map[string]monoid.State, maxSeen time.Duration) *xmltree.Node {
	n := xmltree.Elem("partial")
	n.SetAttr("window", strconv.FormatInt(idx, 10))
	n.SetAttr("max", strconv.FormatInt(int64(maxSeen), 10))
	n.SetAttr("agg", agg.Name())
	for _, k := range sortedKeys(states) {
		kn := xmltree.Elem("k")
		kn.SetAttr("key", k)
		kn.SetAttr("n", states[k].Encode())
		n.Append(kn)
	}
	return n
}

// parsePartial reads a <partial> back: window index, high-water mark,
// decoded states. Non-partial trees, partials of a different aggregate
// function, and corrupt states (negative counts, malformed sketches —
// e.g. a replayed or tampered partial) report ok=false: the merge input
// is rejected whole and surfaces via the dropped counter rather than
// corrupting merged windows.
func parsePartial(agg monoid.Monoid, t *xmltree.Node) (idx int64, max time.Duration, states map[string]monoid.State, ok bool) {
	if t == nil || t.Label != "partial" {
		return 0, 0, nil, false
	}
	if t.AttrOr("agg", "count") != agg.Name() {
		return 0, 0, nil, false
	}
	idx, err := strconv.ParseInt(t.AttrOr("window", "0"), 10, 64)
	if err != nil {
		return 0, 0, nil, false
	}
	m, err := strconv.ParseInt(t.AttrOr("max", "0"), 10, 64)
	if err != nil {
		return 0, 0, nil, false
	}
	states = make(map[string]monoid.State)
	for _, kn := range t.ChildrenByLabel("k") {
		st, err := agg.Decode(kn.AttrOr("n", ""))
		if err != nil {
			return 0, 0, nil, false
		}
		key := kn.AttrOr("key", "")
		if cur := states[key]; cur != nil {
			if cur.Merge(st) != nil {
				return 0, 0, nil, false
			}
		} else {
			states[key] = st
		}
	}
	return idx, time.Duration(m), states, true
}

// PartialAgg is the aggregation tree's leaf: it accumulates the same
// (window, key) states as Group over its single local input, but emits
// <partial> delta states instead of final records — a window's partial
// is emitted when the watermark passes it (observed time one full window
// beyond its end, mirroring Group's EagerEmit rule) and whatever remains
// is emitted at Flush. Stragglers arriving after a window's partial was
// emitted simply accumulate a new delta: downstream merges fold states
// together, so splitting a window across emissions never changes the
// final totals.
type PartialAgg struct {
	Key func(*xmltree.Node) string
	// Value extracts the aggregated value attribute (nil for count).
	Value  func(*xmltree.Node) string
	Window time.Duration
	// Agg is the aggregate function; nil means count.
	Agg monoid.Monoid

	wins    windowStates
	maxSeen time.Duration
	emitted uint64 // partial states emitted (diagnostics)
	dropped uint64 // items whose value the aggregate rejected
}

// Name implements Proc.
func (p *PartialAgg) Name() string { return "PartialAgg" }

// Accept implements Proc.
func (p *PartialAgg) Accept(_ int, it stream.Item, emit Emit) {
	if p.wins == nil {
		p.wins = make(windowStates)
	}
	agg := aggOf(p.Agg)
	var idx int64
	if p.Window > 0 {
		idx = int64(it.Time / p.Window)
	}
	key := "*"
	if p.Key != nil {
		key = p.Key(it.Tree)
	}
	var val string
	if p.Value != nil {
		val = p.Value(it.Tree)
	}
	if !absorb(p.wins, agg, idx, key, val) {
		p.dropped++
		return
	}
	if it.Time > p.maxSeen {
		p.maxSeen = it.Time
	}
	if p.Window > 0 {
		for _, w := range p.wins.sortedWindows() {
			if time.Duration(w+2)*p.Window <= p.maxSeen {
				p.emitWindow(w, emit)
			}
		}
	}
}

// absorb folds one value into the (idx, key) state, creating it when
// absent. A value the aggregate rejects leaves the window map untouched
// and reports false.
func absorb(wins windowStates, agg monoid.Monoid, idx int64, key, val string) bool {
	m := wins[idx]
	st := m[key]
	fresh := st == nil
	if fresh {
		st = agg.Zero()
	}
	if st.Absorb(val) != nil {
		return false
	}
	if fresh {
		if m == nil {
			m = make(map[string]monoid.State)
			wins[idx] = m
		}
		m[key] = st
	}
	return true
}

// Flush implements Proc.
func (p *PartialAgg) Flush(emit Emit) {
	for _, w := range p.wins.sortedWindows() {
		p.emitWindow(w, emit)
	}
}

// PartialsEmitted reports how many partial states left this leaf.
func (p *PartialAgg) PartialsEmitted() uint64 { return p.emitted }

// Dropped reports items whose value the aggregate function rejected
// (e.g. a non-numeric input to sum).
func (p *PartialAgg) Dropped() uint64 { return p.dropped }

func (p *PartialAgg) emitWindow(idx int64, emit Emit) {
	states := p.wins[idx]
	if len(states) == 0 {
		return
	}
	emit(stream.Item{Tree: partialTree(aggOf(p.Agg), idx, states, p.maxSeen), Time: p.maxSeen})
	delete(p.wins, idx)
	p.emitted++
}

// Snapshot implements Snapshotter: the open windows and the watermark.
func (p *PartialAgg) Snapshot() *xmltree.Node {
	n := xmltree.Elem("paggstate")
	durAttr(n, "maxSeen", p.maxSeen)
	n.SetAttr("emitted", strconv.FormatUint(p.emitted, 10))
	n.SetAttr("agg", aggOf(p.Agg).Name())
	n.SetAttr("dropped", strconv.FormatUint(p.dropped, 10))
	appendWindows(n, p.wins)
	return n
}

// Restore implements Snapshotter.
func (p *PartialAgg) Restore(n *xmltree.Node) error {
	if n == nil || n.Label != "paggstate" {
		return fmt.Errorf("operators: not a PartialAgg snapshot")
	}
	agg := aggOf(p.Agg)
	if got := n.AttrOr("agg", "count"); got != agg.Name() {
		return fmt.Errorf("operators: PartialAgg snapshot is %s, operator is %s", got, agg.Name())
	}
	var err error
	if p.maxSeen, err = attrDur(n, "maxSeen"); err != nil {
		return err
	}
	if p.emitted, err = strconv.ParseUint(n.AttrOr("emitted", "0"), 10, 64); err != nil {
		return fmt.Errorf("operators: bad emitted count in snapshot: %w", err)
	}
	if p.dropped, err = strconv.ParseUint(n.AttrOr("dropped", "0"), 10, 64); err != nil {
		return fmt.Errorf("operators: bad dropped count in snapshot: %w", err)
	}
	p.wins, err = parseWindows(agg, n)
	return err
}

// MergeAgg is the aggregation tree's interior: it merges the <partial>
// window states of its children with the monoid's Merge. Interior nodes
// forward the merged partials at Flush (one state per window, so an
// interior's output volume is bounded by windows × keys regardless of
// how many events its subtree saw); the root — Final — emits the final
// records of the flat Group operator instead, in the same
// window-then-key order and carrying the same composed high-water
// timestamp, so a tree deployment's results are byte-identical to the
// flat single-aggregator baseline for exact aggregates.
type MergeAgg struct {
	// Final makes this node the tree root: it emits final records
	// instead of forwarding <partial> states.
	Final bool
	// Agg is the aggregate function; nil means count.
	Agg monoid.Monoid

	wins    windowStates
	maxSeen time.Duration
	dropped uint64 // rejected inputs (non-partials, corrupt states)
}

// Name implements Proc.
func (m *MergeAgg) Name() string { return "MergeAgg" }

// Accept implements Proc.
func (m *MergeAgg) Accept(_ int, it stream.Item, emit Emit) {
	idx, max, states, ok := parsePartial(aggOf(m.Agg), it.Tree)
	if !ok {
		m.dropped++
		return
	}
	if m.wins == nil {
		m.wins = make(windowStates)
	}
	for _, k := range sortedKeys(states) {
		if m.wins.put(idx, k, states[k]) != nil {
			m.dropped++
		}
	}
	if max > m.maxSeen {
		m.maxSeen = max
	}
}

// Flush implements Proc.
func (m *MergeAgg) Flush(emit Emit) {
	agg := aggOf(m.Agg)
	for _, w := range m.wins.sortedWindows() {
		states := m.wins[w]
		if len(states) == 0 {
			continue
		}
		if m.Final {
			for _, k := range sortedKeys(states) {
				n := xmltree.Elem("group")
				n.SetAttr("key", k)
				states[k].Final(func(a, v string) { n.SetAttr(a, v) })
				n.SetAttr("window", strconv.FormatInt(w, 10))
				emit(stream.Item{Tree: n, Time: m.maxSeen})
			}
		} else {
			emit(stream.Item{Tree: partialTree(agg, w, states, m.maxSeen), Time: m.maxSeen})
		}
		delete(m.wins, w)
	}
}

// Dropped reports inputs that were not valid partial states (zero in a
// correctly wired tree fed well-formed partials).
func (m *MergeAgg) Dropped() uint64 { return m.dropped }

// Snapshot implements Snapshotter: the merged open windows and watermark.
func (m *MergeAgg) Snapshot() *xmltree.Node {
	n := xmltree.Elem("maggstate")
	durAttr(n, "maxSeen", m.maxSeen)
	n.SetAttr("final", strconv.FormatBool(m.Final))
	n.SetAttr("agg", aggOf(m.Agg).Name())
	appendWindows(n, m.wins)
	return n
}

// Restore implements Snapshotter.
func (m *MergeAgg) Restore(n *xmltree.Node) error {
	if n == nil || n.Label != "maggstate" {
		return fmt.Errorf("operators: not a MergeAgg snapshot")
	}
	agg := aggOf(m.Agg)
	if got := n.AttrOr("agg", "count"); got != agg.Name() {
		return fmt.Errorf("operators: MergeAgg snapshot is %s, operator is %s", got, agg.Name())
	}
	var err error
	if m.maxSeen, err = attrDur(n, "maxSeen"); err != nil {
		return err
	}
	m.wins, err = parseWindows(agg, n)
	return err
}

// appendWindows serializes windowStates as <w idx><k key n/></w>
// children (the same shape Group's snapshot uses); n holds the monoid
// encoding, so for count the bytes match the map[string]int era.
func appendWindows(n *xmltree.Node, wins windowStates) {
	for _, w := range wins.sortedWindows() {
		wn := xmltree.Elem("w")
		wn.SetAttr("idx", strconv.FormatInt(w, 10))
		states := wins[w]
		for _, k := range sortedKeys(states) {
			kn := xmltree.Elem("k")
			kn.SetAttr("key", k)
			kn.SetAttr("n", states[k].Encode())
			wn.Append(kn)
		}
		n.Append(wn)
	}
}

func parseWindows(agg monoid.Monoid, n *xmltree.Node) (windowStates, error) {
	wins := make(windowStates)
	for _, wn := range n.ChildrenByLabel("w") {
		idx, err := strconv.ParseInt(wn.AttrOr("idx", "0"), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("operators: bad window index in snapshot: %w", err)
		}
		for _, kn := range wn.ChildrenByLabel("k") {
			st, err := agg.Decode(kn.AttrOr("n", ""))
			if err != nil {
				return nil, fmt.Errorf("operators: bad %s state in snapshot: %w", agg.Name(), err)
			}
			if err := wins.put(idx, kn.AttrOr("key", ""), st); err != nil {
				return nil, err
			}
		}
	}
	return wins, nil
}
