package operators

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"p2pm/internal/stream"
	"p2pm/internal/xmltree"
)

func feed(q *stream.Queue, docs ...string) {
	for i, d := range docs {
		q.Push(stream.Item{Tree: xmltree.MustParse(d), Seq: uint64(i + 1), Time: time.Duration(i) * time.Second})
	}
	q.Push(stream.EOSItem("test"))
}

func collect(t *testing.T, p Proc, inputs []*stream.Queue) []stream.Item {
	t.Helper()
	out := stream.NewQueue()
	h := Run(p, inputs, QueueSink(out))
	h.Wait()
	return out.Drain()
}

func labels(items []stream.Item) string {
	var ls []string
	for _, it := range items {
		ls = append(ls, it.Tree.Label)
	}
	return strings.Join(ls, ",")
}

func TestSelectForwardsMatching(t *testing.T) {
	in := stream.NewQueue()
	feed(in, `<a keep="yes"/>`, `<b keep="no"/>`, `<c keep="yes"/>`)
	sel := &Select{Pred: func(n *xmltree.Node) bool { return n.AttrOr("keep", "") == "yes" }}
	got := collect(t, sel, []*stream.Queue{in})
	if labels(got) != "a,c" {
		t.Errorf("got %s", labels(got))
	}
}

func TestSelectNilPredPassesAll(t *testing.T) {
	in := stream.NewQueue()
	feed(in, `<a/>`, `<b/>`)
	got := collect(t, &Select{}, []*stream.Queue{in})
	if labels(got) != "a,b" {
		t.Errorf("got %s", labels(got))
	}
}

func TestRestructure(t *testing.T) {
	in := stream.NewQueue()
	feed(in, `<alert caller="a.com"/>`, `<alert caller="b.com"/>`)
	r := &Restructure{Apply: func(n *xmltree.Node) (*xmltree.Node, error) {
		out := xmltree.Elem("incident")
		out.SetAttr("client", n.AttrOr("caller", "?"))
		return out, nil
	}}
	got := collect(t, r, []*stream.Queue{in})
	if len(got) != 2 || got[0].Tree.AttrOr("client", "") != "a.com" {
		t.Errorf("got %v", got)
	}
}

func TestRestructureDropsAndCountsErrors(t *testing.T) {
	in := stream.NewQueue()
	feed(in, `<a/>`, `<b/>`, `<c/>`)
	r := &Restructure{Apply: func(n *xmltree.Node) (*xmltree.Node, error) {
		switch n.Label {
		case "a":
			return nil, nil // silent drop
		case "b":
			return nil, fmt.Errorf("bad template")
		}
		return n, nil
	}}
	got := collect(t, r, []*stream.Queue{in})
	if labels(got) != "c" || r.Errors() != 1 {
		t.Errorf("got %s errs=%d", labels(got), r.Errors())
	}
}

func TestUnionMergesAllInputs(t *testing.T) {
	in1, in2 := stream.NewQueue(), stream.NewQueue()
	feed(in1, `<a/>`, `<b/>`)
	feed(in2, `<c/>`)
	got := collect(t, &Union{}, []*stream.Queue{in1, in2})
	if len(got) != 3 {
		t.Errorf("got %d items", len(got))
	}
}

func TestRunEmitsSingleEOS(t *testing.T) {
	in := stream.NewQueue()
	feed(in, `<a/>`)
	out := stream.NewQueue()
	var eos int
	h := Run(&Union{}, []*stream.Queue{in}, func(it stream.Item) {
		if it.EOS() {
			eos++
		}
		out.Push(it)
	})
	h.Wait()
	if eos != 1 {
		t.Errorf("eos count = %d", eos)
	}
	if h.ItemsIn() != 1 || h.ItemsOut() != 1 {
		t.Errorf("in=%d out=%d", h.ItemsIn(), h.ItemsOut())
	}
}

func TestDistinct(t *testing.T) {
	in := stream.NewQueue()
	feed(in, `<a x="1"/>`, `<a x="1"/>`, `<a x="2"/>`, `<a x="1"/>`)
	got := collect(t, &Distinct{}, []*stream.Queue{in})
	if len(got) != 2 {
		t.Errorf("got %d items", len(got))
	}
}

func TestDistinctCustomKey(t *testing.T) {
	in := stream.NewQueue()
	feed(in, `<a id="1" noise="p"/>`, `<a id="1" noise="q"/>`, `<a id="2"/>`)
	d := &Distinct{Key: func(n *xmltree.Node) string { return n.AttrOr("id", "") }}
	got := collect(t, d, []*stream.Queue{in})
	if len(got) != 2 {
		t.Errorf("got %d items", len(got))
	}
}

func TestDistinctWindowExpires(t *testing.T) {
	in := stream.NewQueue()
	// Items at t=0s,1s,2s,...; window 1.5s: the duplicate at t=0..1 is
	// suppressed, but after silence the same key reappears.
	in.Push(stream.Item{Tree: xmltree.MustParse(`<a id="1"/>`), Time: 0})
	in.Push(stream.Item{Tree: xmltree.MustParse(`<a id="1"/>`), Time: 1 * time.Second})
	in.Push(stream.Item{Tree: xmltree.MustParse(`<a id="1"/>`), Time: 10 * time.Second})
	in.Push(stream.EOSItem("test"))
	d := &Distinct{Window: 1500 * time.Millisecond}
	got := collect(t, d, []*stream.Queue{in})
	if len(got) != 2 {
		t.Errorf("got %d items, want 2 (expired key re-admitted)", len(got))
	}
}

func TestJoinMatchesOnKey(t *testing.T) {
	left, right := stream.NewQueue(), stream.NewQueue()
	feed(left, `<out callId="1"/>`, `<out callId="2"/>`)
	feed(right, `<in callId="2"/>`, `<in callId="3"/>`)
	j := &Join{LeftKey: AttrKey("callId"), RightKey: AttrKey("callId"), UseIndex: true}
	got := collect(t, j, []*stream.Queue{left, right})
	if len(got) != 1 {
		t.Fatalf("got %d pairs", len(got))
	}
	pair := got[0].Tree
	if pair.Label != "pair" || pair.Child("left") == nil || pair.Child("right") == nil {
		t.Errorf("pair = %s", pair)
	}
	l := pair.Child("left").Children[0]
	r := pair.Child("right").Children[0]
	if l.Label != "out" || r.Label != "in" {
		t.Errorf("sides wrong: %s / %s", l, r)
	}
}

func TestJoinIndexAndScanAgree(t *testing.T) {
	mk := func(useIndex bool) int {
		left, right := stream.NewQueue(), stream.NewQueue()
		for i := 0; i < 30; i++ {
			left.Push(stream.Item{Tree: xmltree.MustParse(fmt.Sprintf(`<l k="%d"/>`, i%10))})
		}
		left.Push(stream.EOSItem("l"))
		for i := 0; i < 30; i++ {
			right.Push(stream.Item{Tree: xmltree.MustParse(fmt.Sprintf(`<r k="%d"/>`, i%10))})
		}
		right.Push(stream.EOSItem("r"))
		j := &Join{LeftKey: AttrKey("k"), RightKey: AttrKey("k"), UseIndex: useIndex}
		out := stream.NewQueue()
		Run(j, []*stream.Queue{left, right}, QueueSink(out)).Wait()
		return len(out.Drain())
	}
	a, b := mk(true), mk(false)
	if a != b {
		t.Errorf("index=%d scan=%d", a, b)
	}
	if a != 90 { // each of 10 keys: 3 left x 3 right
		t.Errorf("pairs = %d, want 90", a)
	}
}

func TestJoinResidualPredicate(t *testing.T) {
	left, right := stream.NewQueue(), stream.NewQueue()
	feed(left, `<l k="1" v="10"/>`, `<l k="1" v="30"/>`)
	feed(right, `<r k="1" v="20"/>`)
	j := &Join{
		LeftKey: AttrKey("k"), RightKey: AttrKey("k"), UseIndex: true,
		Residual: func(l, r *xmltree.Node) bool {
			return l.AttrOr("v", "") < r.AttrOr("v", "")
		},
	}
	got := collect(t, j, []*stream.Queue{left, right})
	if len(got) != 1 {
		t.Errorf("got %d pairs, want 1 (only v=10 < v=20)", len(got))
	}
}

func TestJoinMissingKeyIgnored(t *testing.T) {
	left, right := stream.NewQueue(), stream.NewQueue()
	feed(left, `<l/>`, `<l k="1"/>`)
	feed(right, `<r k="1"/>`)
	j := &Join{LeftKey: AttrKey("k"), RightKey: AttrKey("k"), UseIndex: true}
	got := collect(t, j, []*stream.Queue{left, right})
	if len(got) != 1 {
		t.Errorf("got %d", len(got))
	}
}

func TestJoinWindowEvictsAtWatermark(t *testing.T) {
	j := &Join{LeftKey: AttrKey("k"), RightKey: AttrKey("k"), UseIndex: true, Window: 2 * time.Second}
	out := stream.NewQueue()
	sink := QueueSink(out)
	// Both inputs progress to t=100s; the k=1 left entry from t=0 falls
	// behind the watermark window and is collected, so the late k=1
	// right probe finds nothing; k=2 pairs normally.
	j.Accept(0, stream.Item{Tree: xmltree.MustParse(`<l k="1"/>`), Time: 0}, sink)
	j.Accept(0, stream.Item{Tree: xmltree.MustParse(`<l k="2"/>`), Time: 100 * time.Second}, sink)
	j.Accept(1, stream.Item{Tree: xmltree.MustParse(`<r k="1"/>`), Time: 100 * time.Second}, sink)
	j.Accept(1, stream.Item{Tree: xmltree.MustParse(`<r k="2"/>`), Time: 100 * time.Second}, sink)
	out.Close()
	got := out.Drain()
	if len(got) != 1 {
		t.Errorf("got %d pairs, want 1 (k=2 only)", len(got))
	}
	if j.Evicted() == 0 {
		t.Error("expected evictions")
	}
	if j.HistorySize() >= j.PeakHistorySize()+1 {
		t.Errorf("history accounting wrong: live=%d peak=%d", j.HistorySize(), j.PeakHistorySize())
	}
}

// TestJoinWindowLaggingInputKeepsPartners pins the watermark semantics:
// while one input has not advanced, the other input's entries are NOT
// collected, however far ahead it runs — lagging partners still join.
func TestJoinWindowLaggingInputKeepsPartners(t *testing.T) {
	j := &Join{LeftKey: AttrKey("k"), RightKey: AttrKey("k"), UseIndex: true, Window: time.Second}
	out := stream.NewQueue()
	sink := QueueSink(out)
	// Rights race ahead through t=0..50s; lefts lag at t≈0.
	for i := 0; i <= 50; i += 10 {
		r := xmltree.Elem("r")
		r.SetAttr("k", fmt.Sprintf("%d", i))
		j.Accept(1, stream.Item{Tree: r, Time: time.Duration(i) * time.Second}, sink)
	}
	for i := 0; i <= 50; i += 10 {
		l := xmltree.Elem("l")
		l.SetAttr("k", fmt.Sprintf("%d", i))
		j.Accept(0, stream.Item{Tree: l, Time: time.Duration(i) * time.Second}, sink)
	}
	out.Close()
	if got := len(out.Drain()); got != 6 {
		t.Errorf("got %d pairs, want 6 (no partner lost to the racing input)", got)
	}
}

func TestJoinProbesIndexedFewerThanScan(t *testing.T) {
	build := func(useIndex bool) uint64 {
		j := &Join{LeftKey: AttrKey("k"), RightKey: AttrKey("k"), UseIndex: useIndex}
		sink := func(stream.Item) {}
		for i := 0; i < 200; i++ {
			j.Accept(0, stream.Item{Tree: xmltree.MustParse(fmt.Sprintf(`<l k="%d"/>`, i))}, sink)
		}
		j.Accept(1, stream.Item{Tree: xmltree.MustParse(`<r k="5"/>`)}, sink)
		return j.Probes()
	}
	idx, scan := build(true), build(false)
	if idx >= scan {
		t.Errorf("indexed probes %d should be < scan probes %d", idx, scan)
	}
	if idx != 1 || scan != 200 {
		t.Errorf("idx=%d scan=%d", idx, scan)
	}
}

func TestGroupWindowedCounts(t *testing.T) {
	in := stream.NewQueue()
	push := func(key string, sec int) {
		n := xmltree.Elem("ev")
		n.SetAttr("peer", key)
		in.Push(stream.Item{Tree: n, Time: time.Duration(sec) * time.Second})
	}
	push("a", 0)
	push("a", 1)
	push("b", 1)
	push("a", 5) // crosses the 3s window boundary
	in.Push(stream.EOSItem("test"))
	g := &Group{Key: func(n *xmltree.Node) string { return n.AttrOr("peer", "") }, Window: 3 * time.Second}
	got := collect(t, g, []*stream.Queue{in})
	if len(got) != 3 {
		t.Fatalf("got %d groups: %v", len(got), got)
	}
	if got[0].Tree.AttrOr("key", "") != "a" || got[0].Tree.AttrOr("count", "") != "2" {
		t.Errorf("first group = %s", got[0].Tree)
	}
	if got[2].Tree.AttrOr("window", "") == got[0].Tree.AttrOr("window", "") {
		t.Error("windows should differ")
	}
}

// TestGroupEagerEmitWatermark drives timestamp-ordered items through an
// eager group and checks windows stream out before Flush, with stragglers
// counted as late.
func TestGroupEagerEmitWatermark(t *testing.T) {
	g := &Group{
		Key:       func(n *xmltree.Node) string { return n.AttrOr("k", "") },
		Window:    time.Second,
		EagerEmit: true,
	}
	out := stream.NewQueue()
	sink := QueueSink(out)
	push := func(key string, ms int) {
		n := xmltree.Elem("e")
		n.SetAttr("k", key)
		g.Accept(0, stream.Item{Tree: n, Time: time.Duration(ms) * time.Millisecond}, sink)
	}
	push("a", 100)
	push("a", 900)
	if out.Len() != 0 {
		t.Fatal("window 0 emitted too early")
	}
	push("b", 2500) // watermark passes window 0's end + slack
	if out.Len() != 1 {
		t.Fatalf("window 0 not eagerly emitted (len=%d)", out.Len())
	}
	// A straggler for window 0 after emission: late record.
	push("a", 200)
	if g.Late() != 1 {
		t.Errorf("late = %d", g.Late())
	}
	g.Flush(sink)
	out.Close()
	rows := out.Drain()
	// window0(a=2) eager, then at flush: window0-late(a=1), window2(b=1).
	if len(rows) != 3 {
		for _, r := range rows {
			t.Logf("row: %s", r.Tree)
		}
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Tree.AttrOr("count", "") != "2" || rows[0].Tree.AttrOr("window", "") != "0" {
		t.Errorf("eager row = %s", rows[0].Tree)
	}
}

func TestGroupNoWindowFlushesAtEnd(t *testing.T) {
	in := stream.NewQueue()
	feed(in, `<x/>`, `<x/>`, `<x/>`)
	g := &Group{}
	got := collect(t, g, []*stream.Queue{in})
	if len(got) != 1 || got[0].Tree.AttrOr("count", "") != "3" {
		t.Errorf("got %v", got)
	}
}

func TestChannelPublishSink(t *testing.T) {
	ch := stream.NewChannel("p", "s")
	sub := ch.Subscribe("client", nil)
	in := stream.NewQueue()
	feed(in, `<a/>`)
	Run(&Union{}, []*stream.Queue{in}, ChannelPublish(ch)).Wait()
	got := sub.Queue.Drain()
	if len(got) != 1 || !ch.Closed() {
		t.Errorf("got %d items closed=%v", len(got), ch.Closed())
	}
}

func TestXMLFilePublisher(t *testing.T) {
	var sb strings.Builder
	p := &XMLFilePublisher{W: &sb}
	p.Emit(stream.Item{Tree: xmltree.MustParse(`<a/>`)})
	p.Emit(stream.EOSItem("s"))
	if p.Count() != 1 || !strings.Contains(sb.String(), "<a/>") {
		t.Errorf("out = %q", sb.String())
	}
}

func TestEmailPublisher(t *testing.T) {
	var sb strings.Builder
	p := &EmailPublisher{W: &sb, To: "ops@meteo.com"}
	p.Emit(stream.Item{Tree: xmltree.MustParse(`<incident/>`), Source: "alertQoS@p"})
	if p.Sent() != 1 || !strings.Contains(sb.String(), "To: ops@meteo.com") {
		t.Errorf("out = %q", sb.String())
	}
}

func TestRSSPublisherBoundsItems(t *testing.T) {
	p := &RSSPublisher{Title: "alerts", MaxItems: 2}
	for i := 0; i < 5; i++ {
		p.Emit(stream.Item{Tree: xmltree.MustParse(fmt.Sprintf(`<a n="%d"/>`, i)), Seq: uint64(i)})
	}
	feedDoc := p.Feed()
	items := feedDoc.Child("channel").ChildrenByLabel("item")
	if len(items) != 2 {
		t.Errorf("feed has %d items", len(items))
	}
}

func TestPipelineComposition(t *testing.T) {
	// σ → Π → Distinct chained through queues, mirroring a small deployed
	// plan fragment.
	src := stream.NewQueue()
	feed(src,
		`<alert callMethod="GetTemperature" caller="a.com"/>`,
		`<alert callMethod="Other" caller="b.com"/>`,
		`<alert callMethod="GetTemperature" caller="a.com"/>`,
	)
	q1, q2 := stream.NewQueue(), stream.NewQueue()
	out := stream.NewQueue()
	Run(&Select{Pred: func(n *xmltree.Node) bool { return n.AttrOr("callMethod", "") == "GetTemperature" }},
		[]*stream.Queue{src}, QueueSink(q1))
	Run(&Restructure{Apply: func(n *xmltree.Node) (*xmltree.Node, error) {
		o := xmltree.Elem("client")
		o.Append(xmltree.Text(n.AttrOr("caller", "")))
		return o, nil
	}}, []*stream.Queue{q1}, QueueSink(q2))
	h := Run(&Distinct{}, []*stream.Queue{q2}, QueueSink(out))
	h.Wait()
	got := out.Drain()
	if len(got) != 1 || got[0].Tree.InnerText() != "a.com" {
		t.Errorf("got %v", got)
	}
}
