package operators

import (
	"fmt"
	"testing"
	"time"

	"p2pm/internal/stream"
	"p2pm/internal/xmltree"
)

func keyed(id, key string) stream.Item {
	n := xmltree.Elem("e")
	n.SetAttr("id", id)
	n.SetAttr("k", key)
	return stream.Item{Tree: n}
}

func gather(out *[]stream.Item) Emit {
	return func(it stream.Item) {
		if !it.EOS() {
			*out = append(*out, it)
		}
	}
}

// roundTrip snapshots src, restores into dst, and fails the test on
// error. dst must be the same operator kind.
func roundTrip(t *testing.T, src, dst Snapshotter) {
	t.Helper()
	snap := src.Snapshot()
	// The snapshot travels through the DHT as serialized XML: parse it
	// back to prove the codec is lossless, not just the in-memory tree.
	parsed, err := xmltree.Parse(snap.String())
	if err != nil {
		t.Fatalf("snapshot does not re-parse: %v", err)
	}
	if err := dst.Restore(parsed); err != nil {
		t.Fatalf("restore: %v", err)
	}
}

func TestDistinctSnapshotRoundTrip(t *testing.T) {
	var a, b []stream.Item
	d1 := &Distinct{Window: 10 * time.Second}
	emit1 := gather(&a)
	for i := 0; i < 4; i++ {
		it := keyed(fmt.Sprintf("%d", i%2), "x") // ids 0,1,0,1: two dups
		it.Time = time.Duration(i) * time.Second
		d1.Accept(0, it, emit1)
	}
	if len(a) != 2 {
		t.Fatalf("pre-snapshot emissions = %d, want 2", len(a))
	}

	d2 := &Distinct{Window: 10 * time.Second}
	roundTrip(t, d1, d2)
	emit2 := gather(&b)
	// The restored instance must keep suppressing what d1 already saw...
	dup := keyed("0", "x")
	dup.Time = 5 * time.Second
	d2.Accept(0, dup, emit2)
	// ...and still pass genuinely new items.
	fresh := keyed("9", "x")
	fresh.Time = 6 * time.Second
	d2.Accept(0, fresh, emit2)
	if len(b) != 1 || b[0].Tree.AttrOr("id", "") != "9" {
		t.Fatalf("post-restore emissions = %v, want just id=9", b)
	}
	if d2.SeenSize() != d1.SeenSize()+1 {
		t.Errorf("restored seen size = %d, want %d", d2.SeenSize(), d1.SeenSize()+1)
	}
}

func TestJoinSnapshotRoundTrip(t *testing.T) {
	mk := func() *Join {
		return &Join{
			LeftKey:  AttrKey("k"),
			RightKey: AttrKey("k"),
			UseIndex: true,
			Window:   time.Minute,
		}
	}
	var a, b []stream.Item
	j1 := mk()
	emit1 := gather(&a)
	for i := 0; i < 3; i++ {
		it := keyed(fmt.Sprintf("l%d", i), fmt.Sprintf("key%d", i))
		it.Time = time.Duration(i) * time.Second
		j1.Accept(0, it, emit1)
	}
	if len(a) != 0 {
		t.Fatalf("left-only items already matched: %v", a)
	}

	j2 := mk()
	roundTrip(t, j1, j2)
	emit2 := gather(&b)
	// A right item arriving after the migration must find the left
	// history accumulated before it.
	r := keyed("r1", "key1")
	r.Time = 4 * time.Second
	j2.Accept(1, r, emit2)
	if len(b) != 1 {
		t.Fatalf("post-restore matches = %d, want 1 (left history lost?)", len(b))
	}
	pair := b[0].Tree
	if left := pair.Child("left"); left == nil || left.Children[0].AttrOr("id", "") != "l1" {
		t.Errorf("restored join matched the wrong partner: %s", pair)
	}
	if j2.HistorySize() != j1.HistorySize()+1 {
		t.Errorf("restored history size = %d, want %d", j2.HistorySize(), j1.HistorySize()+1)
	}
}

func TestJoinSnapshotSkipsEvictedEntries(t *testing.T) {
	j := &Join{LeftKey: AttrKey("k"), RightKey: AttrKey("k"), UseIndex: true, Window: 2 * time.Second}
	var out []stream.Item
	emit := gather(&out)
	old := keyed("old", "a")
	old.Time = 0
	j.Accept(0, old, emit)
	// Advance both watermarks far enough to evict the old entry.
	l := keyed("l", "b")
	l.Time = 10 * time.Second
	j.Accept(0, l, emit)
	r := keyed("r", "c")
	r.Time = 10 * time.Second
	j.Accept(1, r, emit)

	j2 := &Join{LeftKey: AttrKey("k"), RightKey: AttrKey("k"), UseIndex: true, Window: 2 * time.Second}
	roundTrip(t, j, j2)
	if j2.HistorySize() != j.HistorySize() {
		t.Errorf("restored history = %d live entries, want %d (evicted entries must not resurrect)",
			j2.HistorySize(), j.HistorySize())
	}
}

func TestGroupSnapshotRoundTrip(t *testing.T) {
	mk := func() *Group {
		return &Group{Key: func(n *xmltree.Node) string { return n.AttrOr("k", "") }, Window: 10 * time.Second}
	}
	var a, b []stream.Item
	g1 := mk()
	emit1 := gather(&a)
	for i := 0; i < 5; i++ {
		it := keyed(fmt.Sprintf("%d", i), "alpha")
		it.Time = time.Duration(i) * time.Second // all in window 0
		g1.Accept(0, it, emit1)
	}

	g2 := mk()
	roundTrip(t, g1, g2)
	emit2 := gather(&b)
	it := keyed("5", "alpha")
	it.Time = 5 * time.Second
	g2.Accept(0, it, emit2)
	g2.Flush(emit2)
	if len(b) != 1 {
		t.Fatalf("post-restore flush emitted %d groups, want 1", len(b))
	}
	if got := b[0].Tree.AttrOr("count", ""); got != "6" {
		t.Errorf("restored window count = %s, want 6 (5 pre-crash + 1 post)", got)
	}
}

// TestGroupSnapshotMidWindowWithLate: a watermark-emitting Group is
// snapshotted with open windows and a non-zero Late() counter (a
// straggler arrived after its window was emitted, which also re-opened
// that window's accumulation); the restored instance carries both and,
// fed the identical remainder, re-emits the identical window boundaries
// — the invariant a mid-window migration must preserve.
func TestGroupSnapshotMidWindowWithLate(t *testing.T) {
	mk := func() *Group {
		return &Group{
			Key:       func(n *xmltree.Node) string { return n.AttrOr("k", "") },
			Window:    10 * time.Second,
			EagerEmit: true,
		}
	}
	at := func(key string, sec int) stream.Item {
		it := keyed(fmt.Sprintf("%s-%d", key, sec), key)
		it.Time = time.Duration(sec) * time.Second
		return it
	}
	var head []stream.Item
	g1 := mk()
	emit1 := gather(&head)
	g1.Accept(0, at("alpha", 1), emit1)
	g1.Accept(0, at("alpha", 4), emit1)
	g1.Accept(0, at("beta", 31), emit1) // watermark: window 0 emitted
	if len(head) != 1 || head[0].Tree.AttrOr("window", "") != "0" {
		t.Fatalf("watermark emission = %v, want window 0", head)
	}
	// Straggler: late++, and its delta re-emits immediately (the
	// watermark already passed window 0). Window 3 stays open.
	g1.Accept(0, at("alpha", 2), emit1)
	g1.Accept(0, at("beta", 35), emit1)
	if g1.Late() != 1 {
		t.Fatalf("late = %d, want 1", g1.Late())
	}
	if len(head) != 2 || head[1].Tree.AttrOr("window", "") != "0" || head[1].Tree.AttrOr("count", "") != "1" {
		t.Fatalf("straggler delta not re-emitted before the snapshot: %v", head)
	}

	g2 := mk()
	roundTrip(t, g1, g2)
	if g2.Late() != 1 {
		t.Errorf("restored late counter = %d, want 1", g2.Late())
	}
	// Identical remainder into both instances, then flush: the restored
	// operator must re-emit the exact same window boundaries and counts.
	var tail1, tail2 []stream.Item
	for _, g := range []struct {
		op  *Group
		out *[]stream.Item
	}{{g1, &tail1}, {g2, &tail2}} {
		e := gather(g.out)
		g.op.Accept(0, at("alpha", 37), e)
		g.op.Flush(e)
	}
	if len(tail1) == 0 {
		t.Fatal("no post-snapshot emissions")
	}
	render := func(items []stream.Item) string {
		s := ""
		for _, it := range items {
			s += it.Tree.String() + "\n"
		}
		return s
	}
	if render(tail1) != render(tail2) {
		t.Errorf("restored Group re-emitted different window boundaries:\n got: %s\nwant: %s",
			render(tail2), render(tail1))
	}
	// The open window (3) must close with every pre- and post-snapshot
	// contribution counted once.
	found := false
	for _, it := range tail1 {
		if it.Tree.AttrOr("window", "") == "3" && it.Tree.AttrOr("key", "") == "beta" &&
			it.Tree.AttrOr("count", "") == "2" {
			found = true
		}
	}
	if !found {
		t.Errorf("open window 3 lost contributions across the snapshot: %s", render(tail1))
	}
}

// TestHandleSyncAndConsumed: Sync runs serialized with the processing
// loop and Consumed reports the per-input high-water mark the loop has
// actually accepted.
func TestHandleSyncAndConsumed(t *testing.T) {
	q := stream.NewQueue()
	var out []stream.Item
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	h := Run(&Union{}, []*stream.Queue{q}, func(it stream.Item) {
		<-mu
		if !it.EOS() {
			out = append(out, it)
		}
		mu <- struct{}{}
	})
	for i := 1; i <= 3; i++ {
		it := keyed(fmt.Sprintf("%d", i), "x")
		it.Seq = uint64(i)
		q.Push(it)
	}
	// Wait (via Sync) until the loop has drained what we pushed.
	deadline := time.Now().Add(5 * time.Second)
	for h.ItemsIn() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	var consumed uint64
	h.Sync(func() { consumed = h.Consumed(0) })
	if consumed != 3 {
		t.Errorf("consumed = %d, want 3", consumed)
	}
	q.Close()
	h.Wait()
	// Sync after completion runs inline.
	ran := false
	h.Sync(func() { ran = true })
	if !ran {
		t.Error("Sync on a finished handle did not run")
	}
}
