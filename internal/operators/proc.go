// Package operators implements P2PM's stream processors (Section 3.1):
// stateless ones — Filter/Select (σ), Restructure (Π), Union (∪) — and
// stateful ones — Join (⋈), Duplicate-removal, Group. Each processor is a
// Proc driven by a Runner goroutine that fans in its input queues,
// serializes processing, and emits into a sink (usually a channel
// publication on the owning peer).
package operators

import (
	"sync"
	"sync/atomic"

	"p2pm/internal/stream"
)

// Emit receives output items from a processor.
type Emit func(stream.Item)

// Proc is a stream processor. Accept is called serially (the runner
// fans in all inputs into one loop), so implementations need no locking
// for per-processor state.
type Proc interface {
	// Name identifies the operator kind ("Select", "Join", ...).
	Name() string
	// Accept processes one item arriving on input idx.
	Accept(idx int, it stream.Item, emit Emit)
	// Flush is called once, after every input has reached eos.
	Flush(emit Emit)
}

// Handle tracks a running operator.
type Handle struct {
	name string
	done chan struct{}
	in   atomic.Uint64
	out  atomic.Uint64
	ctl  chan func()
	// consumed[i] is the sequence number of the latest item accepted on
	// input i. Binding cursors deliver each input in sequence order, so
	// this is also "every sequence <= consumed[i] has been processed" —
	// the input-side coordinate of a checkpoint.
	consumed []atomic.Uint64
}

// Name returns the operator name.
func (h *Handle) Name() string { return h.name }

// Wait blocks until the operator has flushed and emitted eos.
func (h *Handle) Wait() { <-h.done }

// Done returns a channel closed when the operator finishes.
func (h *Handle) Done() <-chan struct{} { return h.done }

// ItemsIn returns the number of items consumed.
func (h *Handle) ItemsIn() uint64 { return h.in.Load() }

// ItemsOut returns the number of items emitted.
func (h *Handle) ItemsOut() uint64 { return h.out.Load() }

// Consumed returns the sequence number of the latest item accepted on
// input idx (0 before any sequenced item arrived).
func (h *Handle) Consumed(idx int) uint64 {
	if idx < 0 || idx >= len(h.consumed) {
		return 0
	}
	return h.consumed[idx].Load()
}

// SeedConsumed raises the consumed cursor of input idx to seq — a
// restored operator logically "has consumed" everything up to its
// checkpoint, and a checkpoint taken before the replayed suffix drains
// must not record the cursor as 0 (it would desynchronize input and
// output positions). Never lowers the cursor.
func (h *Handle) SeedConsumed(idx int, seq uint64) {
	if idx < 0 || idx >= len(h.consumed) {
		return
	}
	for {
		cur := h.consumed[idx].Load()
		if seq <= cur || h.consumed[idx].CompareAndSwap(cur, seq) {
			return
		}
	}
}

// Sync runs f serialized with the operator's processing loop: no Accept
// executes concurrently, so f observes a consistent cut of the
// processor's state, its consumed cursors and its emissions — exactly
// what a checkpoint must capture atomically. If the operator already
// finished, f runs inline (the state is final).
func (h *Handle) Sync(f func()) {
	done := make(chan struct{})
	wrapped := func() { f(); close(done) }
	select {
	case h.ctl <- wrapped:
		<-done
	case <-h.done:
		f()
	}
}

// tagged is an input item annotated with its input index.
type tagged struct {
	idx int
	it  stream.Item
}

// Run starts the processor over the given input queues. The sink receives
// every output item followed by exactly one eos item when all inputs have
// terminated. Run returns immediately; use the Handle to wait.
func Run(p Proc, inputs []*stream.Queue, sink Emit) *Handle {
	h := &Handle{
		name:     p.Name(),
		done:     make(chan struct{}),
		ctl:      make(chan func()),
		consumed: make([]atomic.Uint64, len(inputs)),
	}
	merged := make(chan tagged)
	var wg sync.WaitGroup
	for i, q := range inputs {
		wg.Add(1)
		go func(idx int, q *stream.Queue) {
			defer wg.Done()
			for {
				it, ok := q.Pop()
				if !ok || it.EOS() {
					return
				}
				merged <- tagged{idx: idx, it: it}
			}
		}(i, q)
	}
	go func() {
		wg.Wait()
		close(merged)
	}()
	go func() {
		defer close(h.done)
		emit := func(it stream.Item) {
			if !it.EOS() {
				h.out.Add(1)
			}
			sink(it)
		}
	loop:
		for {
			select {
			case t, ok := <-merged:
				if !ok {
					break loop
				}
				h.in.Add(1)
				h.SeedConsumed(t.idx, t.it.Seq) // monotonic raise
				p.Accept(t.idx, t.it, emit)
			case f := <-h.ctl:
				f()
			}
		}
		p.Flush(emit)
		sink(stream.EOSItem(p.Name()))
	}()
	return h
}
