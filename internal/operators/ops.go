package operators

import (
	"fmt"
	"time"

	"p2pm/internal/monoid"
	"p2pm/internal/stream"
	"p2pm/internal/xmltree"
)

// Select is the σ operator: it forwards items whose tree satisfies the
// predicate. The predicate is compiled by the algebra layer (typically
// from a filter.Subscription plus derived-value conditions).
type Select struct {
	Desc string
	Pred func(*xmltree.Node) bool
}

// Name implements Proc.
func (s *Select) Name() string { return "Select" }

// Accept implements Proc.
func (s *Select) Accept(_ int, it stream.Item, emit Emit) {
	if s.Pred == nil || s.Pred(it.Tree) {
		emit(it)
	}
}

// Flush implements Proc.
func (s *Select) Flush(Emit) {}

// Restructure is the Π operator: it rewrites each input tree through a
// template-application function (the RETURN clause of a subscription).
// A nil result drops the item.
type Restructure struct {
	Desc  string
	Apply func(*xmltree.Node) (*xmltree.Node, error)
	errs  int
}

// Name implements Proc.
func (r *Restructure) Name() string { return "Restructure" }

// Accept implements Proc.
func (r *Restructure) Accept(_ int, it stream.Item, emit Emit) {
	tree, err := r.Apply(it.Tree)
	if err != nil || tree == nil {
		if err != nil {
			r.errs++
		}
		return
	}
	out := it
	out.Tree = tree
	emit(out)
}

// Flush implements Proc.
func (r *Restructure) Flush(Emit) {}

// Errors returns the number of template applications that failed.
func (r *Restructure) Errors() int { return r.errs }

// Union is the ∪ operator: it merges all inputs into one output stream in
// arrival order.
type Union struct{}

// Name implements Proc.
func (u *Union) Name() string { return "Union" }

// Accept implements Proc.
func (u *Union) Accept(_ int, it stream.Item, emit Emit) { emit(it) }

// Flush implements Proc.
func (u *Union) Flush(Emit) {}

// Distinct is the Duplicate-removal operator: it drops items whose
// duplicate key was already seen. The default key is the canonical form of
// the tree. A non-zero Window expires memory of items older than the
// window relative to the newest item's virtual timestamp (the garbage
// collection mechanism sketched in the paper's conclusion).
type Distinct struct {
	Key    func(*xmltree.Node) string
	Window time.Duration
	seen   map[string]time.Duration
	order  []distinctEntry
}

type distinctEntry struct {
	key string
	t   time.Duration
}

// Name implements Proc.
func (d *Distinct) Name() string { return "Distinct" }

// Accept implements Proc.
func (d *Distinct) Accept(_ int, it stream.Item, emit Emit) {
	if d.seen == nil {
		d.seen = make(map[string]time.Duration)
	}
	key := it.Tree.Canonical()
	if d.Key != nil {
		key = d.Key(it.Tree)
	}
	if d.Window > 0 {
		cutoff := it.Time - d.Window
		for len(d.order) > 0 && d.order[0].t < cutoff {
			e := d.order[0]
			d.order = d.order[1:]
			if ts, ok := d.seen[e.key]; ok && ts == e.t {
				delete(d.seen, e.key)
			}
		}
	}
	if _, dup := d.seen[key]; dup {
		// Refresh recency so a steady duplicate stream keeps suppressing.
		d.seen[key] = it.Time
		d.order = append(d.order, distinctEntry{key, it.Time})
		return
	}
	d.seen[key] = it.Time
	d.order = append(d.order, distinctEntry{key, it.Time})
	emit(it)
}

// Flush implements Proc.
func (d *Distinct) Flush(Emit) {}

// SeenSize returns the number of keys currently held (memory measure for
// the GC experiments).
func (d *Distinct) SeenSize() int { return len(d.seen) }

// Group is a windowed group-by-count aggregator used for statistics
// gathering (the Edos motivation: query rates, per-peer usage). Items are
// assigned to *absolute* tumbling windows by their own virtual timestamp
// (window k covers [k·W, (k+1)·W)), so racing upstream branches — a union
// of alerters whose items interleave out of order — still land in the
// right window. One summary tree per (window, key) is emitted:
//
//	<group key="..." count="..." window="..."/>
//
// By default windows are emitted at Flush, which is immune to upstream
// goroutine races (virtual timestamps and arrival order are decoupled in
// the simulation). With EagerEmit, a window is emitted as soon as
// observed time passes its end by one full window of slack (a simple
// watermark) — suitable when the input is timestamp-ordered; stragglers
// then surface as late records counted by Late. A zero Window aggregates
// everything into a single group emitted on Flush.
type Group struct {
	Key func(*xmltree.Node) string
	// Value extracts the aggregated value attribute (nil for count).
	Value     func(*xmltree.Node) string
	Window    time.Duration
	EagerEmit bool
	// Agg is the aggregate function (internal/monoid); nil means count.
	// Non-count aggregates emit their own result attribute (sum, avg,
	// distinct, top, ...) in place of count.
	Agg monoid.Monoid

	wins    windowStates
	emitted map[int64]bool
	maxSeen time.Duration
	late    uint64
	dropped uint64
}

// Name implements Proc.
func (g *Group) Name() string { return "Group" }

// Accept implements Proc.
func (g *Group) Accept(_ int, it stream.Item, emit Emit) {
	if g.wins == nil {
		g.wins = make(windowStates)
		g.emitted = make(map[int64]bool)
	}
	var idx int64
	if g.Window > 0 {
		idx = int64(it.Time / g.Window)
	}
	key := "*"
	if g.Key != nil {
		key = g.Key(it.Tree)
	}
	var val string
	if g.Value != nil {
		val = g.Value(it.Tree)
	}
	if !absorb(g.wins, aggOf(g.Agg), idx, key, val) {
		g.dropped++
		return
	}
	if g.emitted[idx] {
		// A straggler arrived after its window was watermark-emitted; it
		// accumulates again and surfaces as a late record at Flush.
		g.late++
		delete(g.emitted, idx)
	}
	if it.Time > g.maxSeen {
		g.maxSeen = it.Time
	}
	if g.EagerEmit && g.Window > 0 {
		// Watermark: emit windows whose end lies a full window behind the
		// newest timestamp seen.
		for _, w := range g.sortedWindows() {
			if time.Duration(w+2)*g.Window <= g.maxSeen {
				g.emitWindow(w, emit)
			}
		}
	}
}

// Flush implements Proc.
func (g *Group) Flush(emit Emit) {
	for _, w := range g.sortedWindows() {
		g.emitWindow(w, emit)
	}
}

// Late reports stragglers that arrived after their window was emitted.
func (g *Group) Late() uint64 { return g.late }

// Dropped reports items whose value the aggregate function rejected
// (e.g. a non-numeric input to sum).
func (g *Group) Dropped() uint64 { return g.dropped }

func (g *Group) sortedWindows() []int64 { return g.wins.sortedWindows() }

func (g *Group) emitWindow(idx int64, emit Emit) {
	states := g.wins[idx]
	if len(states) == 0 {
		return
	}
	for _, k := range sortedKeys(states) {
		n := xmltree.Elem("group")
		n.SetAttr("key", k)
		states[k].Final(func(a, v string) { n.SetAttr(a, v) })
		n.SetAttr("window", fmt.Sprintf("%d", idx))
		emit(stream.Item{Tree: n, Time: g.maxSeen})
	}
	delete(g.wins, idx)
	g.emitted[idx] = true
}
