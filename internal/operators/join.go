package operators

import (
	"time"

	"p2pm/internal/stream"
	"p2pm/internal/xmltree"
)

// KeyFunc extracts the join key from a tree; ok=false means the tree has
// no key and cannot participate in the join.
type KeyFunc func(*xmltree.Node) (string, bool)

// AttrKey returns a KeyFunc reading a root attribute — the common case in
// monitoring subscriptions ("$c1.callId = $c2.callId").
func AttrKey(attr string) KeyFunc {
	return func(n *xmltree.Node) (string, bool) { return n.Attr(attr) }
}

// Combine builds the join output from a matched pair. The paper: "The
// result of Join includes information about the matching pair of trees."
type Combine func(left, right *xmltree.Node) *xmltree.Node

// PairCombine is the default Combine: <pair><left>…</left><right>…</right></pair>.
func PairCombine(left, right *xmltree.Node) *xmltree.Node {
	return xmltree.Elem("pair",
		xmltree.Elem("left", left.Clone()),
		xmltree.Elem("right", right.Clone()))
}

// Join is the ⋈ operator over two input streams (input 0 = left, 1 =
// right). For each arriving tree, the history of the *other* stream is
// probed for partners with an equal join key (then the optional Residual
// predicate). An index over each history accelerates the probe — set
// UseIndex to false to get the linear-scan baseline measured in bench C8.
//
// Window, when non-zero, bounds each history by virtual time — the
// time-based storage bound of STREAM adopted in the paper's future-work
// GC discussion (bench C10). Eviction follows the *watermark*: the
// minimum of the two inputs' latest timestamps. Cutting by the newest
// arrival alone would be wrong in a distributed deployment, where one
// input's items cross more operator hops and lag the other — their
// in-window partners must not be collected before they arrive.
type Join struct {
	LeftKey  KeyFunc
	RightKey KeyFunc
	Residual func(left, right *xmltree.Node) bool
	Combine  Combine
	UseIndex bool
	Window   time.Duration

	left, right *history
	lastSeen    [2]time.Duration
	seenInput   [2]bool
	probes      uint64 // partner candidates examined
	evicted     uint64
}

// Name implements Proc.
func (j *Join) Name() string { return "Join" }

func (j *Join) init() {
	if j.left == nil {
		j.left = newHistory()
		j.right = newHistory()
		if j.Combine == nil {
			j.Combine = PairCombine
		}
	}
}

// Accept implements Proc.
func (j *Join) Accept(idx int, it stream.Item, emit Emit) {
	j.init()
	var mine, other *history
	var myKey, otherKey KeyFunc
	if idx == 0 {
		mine, other = j.left, j.right
		myKey, otherKey = j.LeftKey, j.RightKey
	} else {
		mine, other = j.right, j.left
		myKey, otherKey = j.RightKey, j.LeftKey
	}
	key, ok := myKey(it.Tree)
	if !ok {
		return
	}
	if it.Time > j.lastSeen[idx] {
		j.lastSeen[idx] = it.Time
	}
	j.seenInput[idx] = true
	if j.Window > 0 && j.seenInput[0] && j.seenInput[1] {
		watermark := j.lastSeen[0]
		if j.lastSeen[1] < watermark {
			watermark = j.lastSeen[1]
		}
		cutoff := watermark - j.Window
		j.evicted += uint64(mine.evictBefore(cutoff))
		j.evicted += uint64(other.evictBefore(cutoff))
	}
	// Probe the other side's history.
	if j.UseIndex {
		for _, e := range other.byKey[key] {
			if e.dead {
				continue
			}
			j.probes++
			j.tryEmit(idx, it, e.tree, emit)
		}
	} else {
		for i := range other.entries {
			e := other.entries[i]
			if e.dead {
				continue
			}
			j.probes++
			k2, ok2 := otherKey(e.tree)
			if ok2 && k2 == key {
				j.tryEmit(idx, it, e.tree, emit)
			}
		}
	}
	mine.add(key, it.Tree, it.Time)
}

func (j *Join) tryEmit(idx int, it stream.Item, partner *xmltree.Node, emit Emit) {
	var l, r *xmltree.Node
	if idx == 0 {
		l, r = it.Tree, partner
	} else {
		l, r = partner, it.Tree
	}
	if j.Residual != nil && !j.Residual(l, r) {
		return
	}
	emit(stream.Item{Tree: j.Combine(l, r), Time: it.Time})
}

// Flush implements Proc.
func (j *Join) Flush(Emit) {}

// HistorySize returns the total live entries held across both histories.
func (j *Join) HistorySize() int {
	j.init()
	return j.left.live + j.right.live
}

// PeakHistorySize returns the maximum combined history size observed.
func (j *Join) PeakHistorySize() int {
	j.init()
	return j.left.peak + j.right.peak
}

// Probes returns the number of candidate partners examined.
func (j *Join) Probes() uint64 { return j.probes }

// Evicted returns the number of history entries garbage-collected by the
// time window.
func (j *Join) Evicted() uint64 { return j.evicted }

// history is one side's join state: an arrival-ordered list plus a hash
// index key → entries. Eviction marks entries dead and prunes the index
// lazily to keep both access paths O(live).
type history struct {
	entries []*histEntry
	byKey   map[string][]*histEntry
	live    int
	peak    int
}

type histEntry struct {
	key  string
	tree *xmltree.Node
	t    time.Duration
	dead bool
}

func newHistory() *history {
	return &history{byKey: make(map[string][]*histEntry)}
}

func (h *history) add(key string, tree *xmltree.Node, t time.Duration) {
	e := &histEntry{key: key, tree: tree, t: t}
	h.entries = append(h.entries, e)
	h.byKey[key] = append(h.byKey[key], e)
	h.live++
	if h.live > h.peak {
		h.peak = h.live
	}
}

// evictBefore marks all entries older than cutoff dead and compacts the
// arrival list; index buckets are compacted on their next touch.
func (h *history) evictBefore(cutoff time.Duration) int {
	// Entries are in arrival order but timestamps can interleave across
	// streams; within one history they are non-decreasing, so scan the
	// prefix.
	n := 0
	for n < len(h.entries) && h.entries[n].t < cutoff {
		h.entries[n].dead = true
		n++
	}
	if n == 0 {
		return 0
	}
	evicted := 0
	for _, e := range h.entries[:n] {
		if bucket, ok := h.byKey[e.key]; ok {
			liveBucket := bucket[:0]
			for _, be := range bucket {
				if !be.dead {
					liveBucket = append(liveBucket, be)
				}
			}
			if len(liveBucket) == 0 {
				delete(h.byKey, e.key)
			} else {
				h.byKey[e.key] = liveBucket
			}
		}
		evicted++
	}
	h.entries = append([]*histEntry(nil), h.entries[n:]...)
	h.live -= evicted
	return evicted
}
