package operators

import (
	"fmt"
	"io"
	"sync"

	"p2pm/internal/stream"
	"p2pm/internal/xmltree"
)

// Publisher operators expose result streams to the world (Section 3.1):
// as channels (the pub/sub case, handled by the peer layer wiring an
// operator's sink to a stream.Channel), or to human users as e-mails, XML
// files, XHTML pages or RSS feeds. The writer-backed publishers below
// simulate the human-facing forms.

// ChannelPublish returns an Emit sink that publishes into ch.
func ChannelPublish(ch *stream.Channel) Emit {
	return func(it stream.Item) {
		if it.EOS() {
			ch.Close()
			return
		}
		ch.Publish(it)
	}
}

// QueueSink returns an Emit sink that pushes into q (closing it on eos).
func QueueSink(q *stream.Queue) Emit {
	return func(it stream.Item) {
		if it.EOS() {
			q.Close()
			return
		}
		q.Push(it)
	}
}

// XMLFilePublisher appends each item as one XML document line to a writer
// (simulating publication as an ordinary XML document).
type XMLFilePublisher struct {
	mu    sync.Mutex
	W     io.Writer
	count int
}

// Emit returns the sink function.
func (p *XMLFilePublisher) Emit(it stream.Item) {
	if it.EOS() {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintln(p.W, it.Tree.String())
	p.count++
}

// Count returns the number of published items.
func (p *XMLFilePublisher) Count() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.count
}

// EmailPublisher renders each item as a small plain-text "message"
// (simulated mail delivery).
type EmailPublisher struct {
	mu   sync.Mutex
	W    io.Writer
	To   string
	sent int
}

// Emit returns the sink function.
func (p *EmailPublisher) Emit(it stream.Item) {
	if it.EOS() {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.W, "To: %s\nSubject: monitoring alert (%s)\n\n%s\n\n", p.To, it.Source, it.Tree.Indent())
	p.sent++
}

// Sent returns the number of mails written.
func (p *EmailPublisher) Sent() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sent
}

// RSSPublisher maintains an RSS 2.0 feed of the last MaxItems results.
type RSSPublisher struct {
	mu       sync.Mutex
	Title    string
	MaxItems int
	items    []*xmltree.Node
}

// Emit returns the sink function.
func (p *RSSPublisher) Emit(it stream.Item) {
	if it.EOS() {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	max := p.MaxItems
	if max <= 0 {
		max = 20
	}
	entry := xmltree.Elem("item",
		xmltree.ElemText("title", fmt.Sprintf("alert #%d from %s", it.Seq, it.Source)),
		xmltree.Elem("description", it.Tree.Clone()))
	p.items = append(p.items, entry)
	if len(p.items) > max {
		p.items = p.items[len(p.items)-max:]
	}
}

// Feed renders the current feed document.
func (p *RSSPublisher) Feed() *xmltree.Node {
	p.mu.Lock()
	defer p.mu.Unlock()
	ch := xmltree.Elem("channel", xmltree.ElemText("title", p.Title))
	for _, it := range p.items {
		ch.Append(it.Clone())
	}
	rss := xmltree.Elem("rss", ch)
	rss.SetAttr("version", "2.0")
	return rss
}
