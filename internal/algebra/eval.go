package algebra

import (
	"fmt"

	"p2pm/internal/operators"
	"p2pm/internal/p2pml"
	"p2pm/internal/xmltree"
)

// This file bridges declarative operator specs to the runtime closures
// the operators package executes. The declarative side (specs, signatures)
// is what gets published to the stream-definition database; the closures
// are what actually runs on a peer.

// SelectPred compiles a σ spec into an item predicate. Evaluation errors
// (beyond benign missing attributes, which the expression layer already
// maps to false) drop the item.
func SelectPred(inputSchema []string, spec *SelectSpec) func(*xmltree.Node) bool {
	return func(item *xmltree.Node) bool {
		env, err := ExtractEnv(inputSchema, item)
		if err != nil {
			return false
		}
		if err := p2pml.EvalLets(spec.Lets, env); err != nil {
			return false
		}
		for _, cond := range spec.Conds {
			ok, err := p2pml.EvalCondition(cond, env)
			if err != nil || !ok {
				return false
			}
		}
		return true
	}
}

// JoinKeys compiles the equi-join key extractors for the two inputs. A
// join without an equi predicate degrades to a constant key (cross
// product filtered by the residual). Each key evaluates only the LET
// bindings it actually references: the join's residual LETs may span both
// variables, but at key-extraction time only one side is bound.
func JoinKeys(leftSchema, rightSchema []string, spec *JoinSpec) (operators.KeyFunc, operators.KeyFunc) {
	mk := func(schema []string, key p2pml.Expr) operators.KeyFunc {
		if key == nil {
			return func(*xmltree.Node) (string, bool) { return "", true }
		}
		lets := letsUsedBy(spec.Lets, key.Vars())
		return func(item *xmltree.Node) (string, bool) {
			env, err := ExtractEnv(schema, item)
			if err != nil {
				return "", false
			}
			if err := p2pml.EvalLets(lets, env); err != nil {
				return "", false
			}
			v, err := key.Eval(env)
			if err != nil {
				return "", false
			}
			return v.Text(), true
		}
	}
	return mk(leftSchema, spec.LeftKey), mk(rightSchema, spec.RightKey)
}

// letsUsedBy filters lets to those the given variables reference,
// transitively, preserving declaration order.
func letsUsedBy(lets []p2pml.LetBinding, vars []string) []p2pml.LetBinding {
	byVar := make(map[string]p2pml.LetBinding, len(lets))
	for _, l := range lets {
		byVar[l.Var] = l
	}
	needed := make(map[string]bool)
	var mark func(v string)
	mark = func(v string) {
		if l, ok := byVar[v]; ok && !needed[v] {
			needed[v] = true
			for _, inner := range l.Expr.Vars() {
				mark(inner)
			}
		}
	}
	for _, v := range vars {
		mark(v)
	}
	var out []p2pml.LetBinding
	for _, l := range lets {
		if needed[l.Var] {
			out = append(out, l)
		}
	}
	return out
}

// JoinResidual compiles the residual predicate over candidate pairs; nil
// when the spec has no residual conditions.
func JoinResidual(leftSchema, rightSchema []string, spec *JoinSpec) func(l, r *xmltree.Node) bool {
	if len(spec.Residual) == 0 {
		return nil
	}
	return func(l, r *xmltree.Node) bool {
		env, err := pairEnv(leftSchema, l, rightSchema, r)
		if err != nil {
			return false
		}
		if err := p2pml.EvalLets(spec.Lets, env); err != nil {
			return false
		}
		for _, cond := range spec.Residual {
			ok, err := p2pml.EvalCondition(cond, env)
			if err != nil || !ok {
				return false
			}
		}
		return true
	}
}

func pairEnv(leftSchema []string, l *xmltree.Node, rightSchema []string, r *xmltree.Node) (*p2pml.Env, error) {
	envL, err := ExtractEnv(leftSchema, l)
	if err != nil {
		return nil, err
	}
	envR, err := ExtractEnv(rightSchema, r)
	if err != nil {
		return nil, err
	}
	for v, t := range envR.Trees {
		envL.Trees[v] = t
	}
	return envL, nil
}

// JoinCombine builds the tuple-merging combiner for a join node.
func JoinCombine(leftSchema, rightSchema []string) operators.Combine {
	return func(l, r *xmltree.Node) *xmltree.Node {
		return MergeTuples(leftSchema, l, rightSchema, r)
	}
}

// RestructApply compiles a Π spec into the per-item transformation.
func RestructApply(inputSchema []string, spec *RestructSpec) func(*xmltree.Node) (*xmltree.Node, error) {
	return func(item *xmltree.Node) (*xmltree.Node, error) {
		env, err := ExtractEnv(inputSchema, item)
		if err != nil {
			return nil, err
		}
		if err := p2pml.EvalLets(spec.Lets, env); err != nil {
			return nil, err
		}
		if spec.Expr != nil {
			v, err := spec.Expr.Eval(env)
			if err != nil {
				if p2pml.IsAttrMissing(err) {
					return nil, nil // drop silently, like a false condition
				}
				return nil, err
			}
			if v.Node != nil {
				return v.Node.Clone(), nil
			}
			return xmltree.ElemText("value", v.Text()), nil
		}
		if spec.Template == nil {
			return nil, fmt.Errorf("algebra: Π without template or expression")
		}
		out, err := spec.Template.Instantiate(env)
		if err != nil {
			if p2pml.IsAttrMissing(err) {
				return nil, nil
			}
			return nil, err
		}
		return out, nil
	}
}
