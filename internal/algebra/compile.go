package algebra

import (
	"fmt"

	"p2pm/internal/p2pml"
	"p2pm/internal/stream"
	"p2pm/internal/xpath"
)

// Compile translates a parsed subscription into a *naive* monitoring
// plan, mirroring the first processing step of Figure 3: sources feed a
// left-deep join tree, every non-join condition sits in a single σ on
// top, then Π (and Distinct), then the publisher. All processors are
// generic (@any); Optimize pushes selections down and assigns peers.
func Compile(sub *p2pml.Subscription) (*Node, error) {
	c := &compiler{sub: sub, letByVar: make(map[string]p2pml.LetBinding)}
	for _, l := range sub.Let {
		c.letByVar[l.Var] = l
	}
	return c.compile()
}

type compiler struct {
	sub      *p2pml.Subscription
	letByVar map[string]p2pml.LetBinding
	chanSeq  int
}

// streamVarsOf expands LET variables to the underlying stream variables.
func (c *compiler) streamVarsOf(vars []string) []string {
	seen := make(map[string]bool)
	var out []string
	var expand func(v string)
	expand = func(v string) {
		if l, isLet := c.letByVar[v]; isLet {
			for _, inner := range l.Expr.Vars() {
				expand(inner)
			}
			return
		}
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, v := range vars {
		expand(v)
	}
	return out
}

// letsFor returns the LET bindings (in declaration order) needed to
// evaluate expressions over the given variables.
func (c *compiler) letsFor(conds []p2pml.Condition, exprs ...p2pml.Expr) []p2pml.LetBinding {
	needed := make(map[string]bool)
	mark := func(vars []string) {
		for _, v := range vars {
			if _, isLet := c.letByVar[v]; isLet {
				needed[v] = true
			}
		}
	}
	for _, cond := range conds {
		mark(cond.Vars())
	}
	for _, e := range exprs {
		if e != nil {
			mark(e.Vars())
		}
	}
	// Include transitive let-on-let dependencies.
	for changed := true; changed; {
		changed = false
		for v := range needed {
			for _, dep := range c.letByVar[v].Expr.Vars() {
				if _, isLet := c.letByVar[dep]; isLet && !needed[dep] {
					needed[dep] = true
					changed = true
				}
			}
		}
	}
	var out []p2pml.LetBinding
	for _, l := range c.sub.Let {
		if needed[l.Var] {
			out = append(out, l)
		}
	}
	return out
}

func (c *compiler) compile() (*Node, error) {
	// Variables consumed as dynamic-membership drivers (inCOM($j)) feed
	// their consumer's alerter set; they are not joinable streams.
	drivers := make(map[string]bool)
	for _, f := range c.sub.For {
		if as, ok := f.Source.(*p2pml.AlerterSource); ok && as.StreamVar != "" {
			drivers[as.StreamVar] = true
		}
	}
	for _, cond := range c.sub.Where {
		for _, v := range c.streamVarsOf(cond.Vars()) {
			if drivers[v] {
				return nil, fmt.Errorf("algebra: $%s drives a dynamic alerter and cannot appear in WHERE", v)
			}
		}
	}

	// 1. One source plan per FOR binding.
	sources := make(map[string]*Node)
	var order []string
	for _, f := range c.sub.For {
		if drivers[f.Var] {
			continue // compiled inside its consumer's DynAlerter
		}
		src, err := c.compileSource(f)
		if err != nil {
			return nil, err
		}
		sources[f.Var] = src
		order = append(order, f.Var)
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("algebra: subscription has no stream sources")
	}

	// 2. Classify WHERE conditions.
	type joinEdge struct {
		a, b string
		cond p2pml.Condition
	}
	var singles []p2pml.Condition
	var edges []joinEdge
	var global []p2pml.Condition
	for _, cond := range c.sub.Where {
		vars := c.streamVarsOf(cond.Vars())
		switch len(vars) {
		case 0:
			global = append(global, cond)
		case 1:
			singles = append(singles, cond)
		case 2:
			edges = append(edges, joinEdge{a: vars[0], b: vars[1], cond: cond})
		default:
			global = append(global, cond)
		}
	}

	// 3. Left-deep join tree in FOR order.
	plan := sources[order[0]]
	joined := map[string]bool{order[0]: true}
	for _, v := range order[1:] {
		right := sources[v]
		spec := &JoinSpec{}
		var rest []joinEdge
		for _, e := range edges {
			spans := (joined[e.a] && e.b == v) || (joined[e.b] && e.a == v)
			if !spans {
				rest = append(rest, e)
				continue
			}
			if spec.LeftKey == nil {
				if lk, rk, ok := equiKeys(e.cond, joined, v, c); ok {
					spec.LeftKey, spec.RightKey = lk, rk
					continue
				}
			}
			spec.Residual = append(spec.Residual, e.cond)
		}
		edges = rest
		spec.Lets = c.letsFor(spec.Residual, spec.LeftKey, spec.RightKey)
		plan = &Node{
			Op: OpJoin, Peer: AnyPeer,
			Inputs: []*Node{plan, right},
			Schema: append(append([]string(nil), plan.Schema...), right.Schema...),
			Join:   spec,
		}
		joined[v] = true
	}
	// Unplaced edges (conditions spanning vars not adjacent in the tree)
	// and global conditions join the single-variable ones in the top σ.
	for _, e := range edges {
		global = append(global, e.cond)
	}
	topConds := append(append([]p2pml.Condition(nil), singles...), global...)
	if len(topConds) > 0 {
		plan = &Node{
			Op: OpSelect, Peer: AnyPeer,
			Inputs: []*Node{plan},
			Schema: plan.Schema,
			Select: &SelectSpec{Conds: topConds, Lets: c.letsFor(topConds)},
		}
	}

	// 4. Π from the RETURN clause.
	ret := c.sub.Return
	plan = &Node{
		Op: OpRestruct, Peer: AnyPeer,
		Inputs:   []*Node{plan},
		Restruct: &RestructSpec{Template: ret.Template, Expr: ret.Expr, Lets: c.letsFor(nil, ret.Expr, templateExpr(ret))},
	}
	if ret.Distinct {
		plan = &Node{Op: OpDistinct, Peer: AnyPeer, Inputs: []*Node{plan}}
	}
	// 4b. γ from the extension GROUP clause: windowed counts over the
	// output stream.
	if g := c.sub.Group; g != nil {
		plan = &Node{
			Op: OpGroup, Peer: AnyPeer,
			Inputs: []*Node{plan},
			Group:  &GroupSpec{KeyAttr: g.Attr, Window: g.Window, Fn: g.Fn, ValueAttr: g.ValueAttr},
		}
	}

	// 5. Publisher from the BY clause.
	pub := &PublishSpec{Targets: c.sub.By, ChannelID: c.channelID()}
	plan = &Node{Op: OpPublish, Peer: AnyPeer, Inputs: []*Node{plan}, Publish: pub}
	return plan, nil
}

// templateExpr lets letsFor see through template variable references.
func templateExpr(ret *p2pml.ReturnClause) p2pml.Expr {
	if ret.Template == nil {
		return nil
	}
	return templateVarsExpr{ret.Template}
}

type templateVarsExpr struct{ t *p2pml.Template }

func (e templateVarsExpr) Eval(*p2pml.Env) (p2pml.Value, error) {
	return p2pml.Value{}, fmt.Errorf("algebra: templateVarsExpr is not evaluable")
}
func (e templateVarsExpr) String() string { return "template" }
func (e templateVarsExpr) Vars() []string { return e.t.Vars() }

func (c *compiler) channelID() string {
	for _, t := range c.sub.By {
		switch t.Kind {
		case p2pml.ByPublishChannel, p2pml.ByChannel:
			return t.Name
		}
	}
	c.chanSeq++
	return fmt.Sprintf("result%d", c.chanSeq)
}

func (c *compiler) compileSource(f p2pml.ForBinding) (*Node, error) {
	switch src := f.Source.(type) {
	case *p2pml.AlerterSource:
		kind := p2pml.AlerterFuncs[src.Func]
		if src.StreamVar != "" {
			// Dynamic membership: the driver variable's source feeds a
			// DynAlerter that manages one alerter per joined peer.
			driver, err := c.compileSource(c.findBinding(src.StreamVar))
			if err != nil {
				return nil, err
			}
			return &Node{
				Op: OpDynAlerter, Peer: AnyPeer,
				Inputs:  []*Node{driver},
				Schema:  []string{f.Var},
				Alerter: &AlerterSpec{Func: src.Func, Kind: kind, Args: src.Args},
			}, nil
		}
		nodes := make([]*Node, 0, len(src.Peers))
		for _, peer := range src.Peers {
			nodes = append(nodes, NewAlerter(src.Func, kind, peer, f.Var, src.Args))
		}
		if len(nodes) == 1 {
			return nodes[0], nil
		}
		return &Node{Op: OpUnion, Peer: AnyPeer, Inputs: nodes, Schema: []string{f.Var}}, nil
	case *p2pml.NestedSource:
		inner, err := Compile(src.Sub)
		if err != nil {
			return nil, err
		}
		// Drop the inner publisher: the nested stream feeds the outer
		// plan directly. The inner plan's Π output trees bind to the
		// outer variable; inner nodes keep their own inner schemas.
		body := inner.Inputs[0]
		body.Schema = []string{f.Var}
		return body, nil
	case *p2pml.ChannelSource:
		ref, err := stream.ParseRef(src.Ref)
		if err != nil {
			return nil, err
		}
		return &Node{Op: OpChannelIn, Peer: ref.PeerID, Schema: []string{f.Var}, Channel: ref}, nil
	}
	return nil, fmt.Errorf("algebra: unsupported source %T", f.Source)
}

func (c *compiler) findBinding(v string) p2pml.ForBinding {
	for _, f := range c.sub.For {
		if f.Var == v {
			return f
		}
	}
	return p2pml.ForBinding{}
}

// equiKeys recognizes an equi-join condition "exprA = exprB" where one
// side references only already-joined variables and the other only the
// new variable; it returns (leftKey, rightKey).
func equiKeys(cond p2pml.Condition, joined map[string]bool, newVar string, c *compiler) (p2pml.Expr, p2pml.Expr, bool) {
	cmp, ok := cond.(*p2pml.CmpCond)
	if !ok || cmp.Op != xpath.OpEq {
		return nil, nil, false
	}
	lv := c.streamVarsOf(cmp.Left.Vars())
	rv := c.streamVarsOf(cmp.Right.Vars())
	onlyJoined := func(vs []string) bool {
		for _, v := range vs {
			if !joined[v] {
				return false
			}
		}
		return len(vs) > 0
	}
	onlyNew := func(vs []string) bool {
		return len(vs) == 1 && vs[0] == newVar
	}
	switch {
	case onlyJoined(lv) && onlyNew(rv):
		return cmp.Left, cmp.Right, true
	case onlyJoined(rv) && onlyNew(lv):
		return cmp.Right, cmp.Left, true
	}
	return nil, nil, false
}
