package algebra

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"p2pm/internal/p2pml"
	"p2pm/internal/xmltree"
)

// This file implements a reference interpreter for monitoring plans over
// *finite* input sets and uses it for the central semantic property:
// optimization (selection pushdown + placement) never changes a plan's
// results.

// evalPlan evaluates a plan over fixed per-alerter inputs, ignoring
// placement. Joins are evaluated as full cross-products filtered by their
// predicates, so the result is order-insensitive.
func evalPlan(t *testing.T, n *Node, inputs map[string][]*xmltree.Node) []*xmltree.Node {
	t.Helper()
	switch n.Op {
	case OpAlerter:
		key := n.Alerter.Func + "@" + n.Alerter.Peer
		return inputs[key]
	case OpSelect:
		pred := SelectPred(n.Inputs[0].Schema, n.Select)
		var out []*xmltree.Node
		for _, it := range evalPlan(t, n.Inputs[0], inputs) {
			if pred(it) {
				out = append(out, it)
			}
		}
		return out
	case OpUnion:
		var out []*xmltree.Node
		for _, in := range n.Inputs {
			out = append(out, evalPlan(t, in, inputs)...)
		}
		return out
	case OpJoin:
		lk, rk := JoinKeys(n.Inputs[0].Schema, n.Inputs[1].Schema, n.Join)
		res := JoinResidual(n.Inputs[0].Schema, n.Inputs[1].Schema, n.Join)
		combine := JoinCombine(n.Inputs[0].Schema, n.Inputs[1].Schema)
		left := evalPlan(t, n.Inputs[0], inputs)
		right := evalPlan(t, n.Inputs[1], inputs)
		var out []*xmltree.Node
		for _, l := range left {
			for _, r := range right {
				k1, ok1 := lk(l)
				k2, ok2 := rk(r)
				if !ok1 || !ok2 || k1 != k2 {
					continue
				}
				if res != nil && !res(l, r) {
					continue
				}
				out = append(out, combine(l, r))
			}
		}
		return out
	case OpRestruct:
		apply := RestructApply(n.Inputs[0].Schema, n.Restruct)
		var out []*xmltree.Node
		for _, it := range evalPlan(t, n.Inputs[0], inputs) {
			tree, err := apply(it)
			if err != nil {
				t.Fatalf("restructure: %v", err)
			}
			if tree != nil {
				out = append(out, tree)
			}
		}
		return out
	case OpDistinct:
		seen := map[string]bool{}
		var out []*xmltree.Node
		for _, it := range evalPlan(t, n.Inputs[0], inputs) {
			key := it.Canonical()
			if !seen[key] {
				seen[key] = true
				out = append(out, it)
			}
		}
		return out
	case OpPublish:
		return evalPlan(t, n.Inputs[0], inputs)
	}
	t.Fatalf("interpreter: unsupported op %v", n.Op)
	return nil
}

func canonSet(items []*xmltree.Node) string {
	keys := make([]string, len(items))
	for i, it := range items {
		keys[i] = it.Canonical()
	}
	sort.Strings(keys)
	return fmt.Sprint(keys)
}

// genAlert builds a random WS-style alert.
func genAlert(rnd *lcg2) *xmltree.Node {
	n := xmltree.Elem("alert")
	n.SetAttr("callId", fmt.Sprintf("call-%d", rnd.Intn(6)))
	n.SetAttr("callMethod", []string{"GetTemperature", "GetHumidity", "Ping"}[rnd.Intn(3)])
	n.SetAttr("callee", []string{"http://meteo.com", "http://other.com"}[rnd.Intn(2)])
	n.SetAttr("caller", []string{"a.com", "b.com", "c.com"}[rnd.Intn(3)])
	n.SetAttr("callTimestamp", fmt.Sprintf("%d", 100+rnd.Intn(50)))
	n.SetAttr("responseTimestamp", fmt.Sprintf("%d", 100+rnd.Intn(80)))
	return n
}

// TestQuickOptimizationPreservesSemantics is the core compiler property:
// for random alert populations, the naive compiled plan and the optimized
// (pushed-down, placed) plan produce identical result multisets.
func TestQuickOptimizationPreservesSemantics(t *testing.T) {
	subs := []string{
		// The Figure 1 subscription.
		`for $c1 in outCOM(<p>a.com</p><p>b.com</p>),
		 $c2 in inCOM(<p>meteo.com</p>)
		 let $duration := $c1.responseTimestamp - $c1.callTimestamp
		 where $duration > 10 and
		       $c1.callMethod = "GetTemperature" and
		       $c1.callee = "http://meteo.com" and
		       $c1.callId = $c2.callId
		 return <incident><client>{$c1.caller}</client></incident>
		 by publish as channel "q1"`,
		// Single source with mixed conditions and distinct.
		`for $e in inCOM(<p>meteo.com</p>)
		 where $e.callMethod = "Ping" and $e.caller != "c.com"
		 return distinct <seen from="{$e.caller}"/>
		 by publish as channel "q2"`,
		// Cross-source inequality (residual-only join).
		`for $a in outCOM(<p>a.com</p>), $b in outCOM(<p>b.com</p>)
		 where $a.callTimestamp < $b.callTimestamp and $a.callMethod = "Ping"
		 return <pair x="{$a.callId}" y="{$b.callId}"/>
		 by publish as channel "q3"`,
		// Union of three monitored peers, condition on the unioned stream.
		`for $e in outCOM(<p>a.com</p><p>b.com</p><p>c.com</p>)
		 where $e.callee = "http://meteo.com"
		 return $e by publish as channel "q4"`,
		// Equi-join plus a cross-variable LET residual (regression: key
		// extraction must not evaluate LETs spanning both sides).
		`for $a in outCOM(<p>a.com</p>), $b in inCOM(<p>meteo.com</p>)
		 let $lag := $b.callTimestamp - $a.responseTimestamp
		 where $a.callId = $b.callId and $lag > 5
		 return <lagged id="{$a.callId}" lag="{$lag}"/>
		 by publish as channel "q5"`,
	}
	plans := make([][2]*Node, 0, len(subs))
	for _, src := range subs {
		naive, err := Compile(p2pml.MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		optimized := Optimize(naive.Clone(), DefaultOptions("p"))
		plans = append(plans, [2]*Node{naive, optimized})
	}

	f := func(seed int64) bool {
		rnd := newRand2(seed)
		inputs := map[string][]*xmltree.Node{}
		for _, key := range []string{
			"outCOM@a.com", "outCOM@b.com", "outCOM@c.com", "inCOM@meteo.com",
		} {
			for i := 0; i < rnd.Intn(6); i++ {
				inputs[key] = append(inputs[key], genAlert(rnd))
			}
		}
		for i, pair := range plans {
			got := canonSet(evalPlan(t, pair[1], inputs))
			want := canonSet(evalPlan(t, pair[0], inputs))
			if got != want {
				t.Logf("seed=%d sub=%d:\n naive: %s\n optim: %s", seed, i, want, got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestUnionSignatureCommutative pins the stream-equivalence extension:
// unions over the same sources in different order denote the same stream.
func TestUnionSignatureCommutative(t *testing.T) {
	a, err := Compile(p2pml.MustParse(
		`for $e in outCOM(<p>a.com</p><p>b.com</p>) return $e by channel X`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(p2pml.MustParse(
		`for $e in outCOM(<p>b.com</p><p>a.com</p>) return $e by channel X`))
	if err != nil {
		t.Fatal(err)
	}
	var ua, ub *Node
	a.Walk(func(n *Node) {
		if n.Op == OpUnion {
			ua = n
		}
	})
	b.Walk(func(n *Node) {
		if n.Op == OpUnion {
			ub = n
		}
	})
	if ua.Signature() != ub.Signature() {
		t.Errorf("union signatures differ:\n%s\n%s", ua.Signature(), ub.Signature())
	}
}

type lcg2 struct{ state uint64 }

func newRand2(seed int64) *lcg2 { return &lcg2{state: uint64(seed)*2862933555777941757 + 3037000493} }

func (l *lcg2) Intn(n int) int {
	l.state = l.state*6364136223846793005 + 1442695040888963407
	if n <= 0 {
		return 0
	}
	return int((l.state >> 33) % uint64(n))
}
