// Package algebra implements the stream algebra of Section 3: monitoring
// plans are trees of operators over XML streams — alerters (0-ary
// sources), stream processors (σ, Π, ∪, ⋈, Distinct, Group) and
// publishers. A P2PML subscription compiles into a naive plan, the
// optimizer rewrites it (selection pushdown, placement), and the peer
// layer deploys per-peer fragments connected by channels.
package algebra

import (
	"fmt"
	"sort"
	"strings"

	"p2pm/internal/p2pml"
	"p2pm/internal/stream"
	"p2pm/internal/xmltree"
)

// OpKind enumerates the operator kinds.
type OpKind int

// The operator kinds of the stream algebra.
const (
	OpAlerter    OpKind = iota // 0-ary event source at a monitored peer
	OpDynAlerter               // alerter set driven by a membership stream
	OpChannelIn                // subscription to an existing channel
	OpSelect                   // σ
	OpRestruct                 // Π
	OpUnion                    // ∪
	OpJoin                     // ⋈
	OpDistinct                 // duplicate removal
	OpGroup                    // windowed group/count
	OpPublish                  // publisher
	OpPartialAgg               // γp: aggregation-tree leaf (local pre-aggregation)
	OpMergeAgg                 // γm: aggregation-tree interior (partial-state merge)
)

var opNames = map[OpKind]string{
	OpAlerter: "Alerter", OpDynAlerter: "DynAlerter", OpChannelIn: "ChannelIn",
	OpSelect: "Select", OpRestruct: "Restructure", OpUnion: "Union",
	OpJoin: "Join", OpDistinct: "Distinct", OpGroup: "Group", OpPublish: "Publish",
	OpPartialAgg: "PartialAgg", OpMergeAgg: "MergeAgg",
}

func (k OpKind) String() string { return opNames[k] }

// AnyPeer marks a generic (not yet placed) operator — the paper's s@any.
const AnyPeer = "any"

// Node is one operator of a monitoring plan.
type Node struct {
	Op     OpKind
	Peer   string // placement; AnyPeer until the optimizer assigns one
	Inputs []*Node
	// Schema lists the subscription variables bound by this node's
	// output items, in order. Single-variable streams carry the alert
	// tree itself; multi-variable streams carry <tuple> trees with one
	// <bind var="..."> child per variable.
	Schema []string

	Alerter  *AlerterSpec
	Select   *SelectSpec
	Restruct *RestructSpec
	Join     *JoinSpec
	Group    *GroupSpec
	Publish  *PublishSpec
	Channel  stream.Ref // for OpChannelIn: the provider actually consumed
	// Origin, for OpChannelIn nodes introduced by stream reuse, names the
	// *original* stream when Channel points at a replica. Descriptors are
	// always published against originals (Section 5).
	Origin stream.Ref
	// AggKey, for OpMergeAgg interiors of an aggregation tree, is the DHT
	// routing key that placed the node: failover and membership
	// rebalancing re-derive the host from it, so the tree shape follows
	// ring ownership instead of sticking to a first placement.
	AggKey string
}

// AlerterSpec describes an event source.
type AlerterSpec struct {
	Func string // inCOM, outCOM, rssCOM, pageCOM, axmlCOM, areRegistered
	Kind string // resolved alerter kind (ws-in, ws-out, rss, ...)
	Peer string // the monitored peer ("local" resolves at deployment)
	Args []*xmltree.Node
}

// SelectSpec is a σ: a conjunction of conditions over the node's schema,
// with the LET bindings needed to evaluate them.
type SelectSpec struct {
	Conds []p2pml.Condition
	Lets  []p2pml.LetBinding
}

// RestructSpec is a Π: the RETURN clause of the subscription.
type RestructSpec struct {
	Template *p2pml.Template
	Expr     p2pml.Expr
	Lets     []p2pml.LetBinding
}

// JoinSpec is a ⋈ between the left input (Inputs[0]) and right input
// (Inputs[1]).
type JoinSpec struct {
	// LeftKey/RightKey, when set, form an equi-join predicate
	// LeftKey = RightKey usable with the history index.
	LeftKey, RightKey p2pml.Expr
	// Residual conditions are evaluated on each candidate pair.
	Residual []p2pml.Condition
	Lets     []p2pml.LetBinding
}

// GroupSpec configures a Group operator — and, in a decomposed
// aggregation tree, the PartialAgg leaves and MergeAgg interiors derived
// from it.
type GroupSpec struct {
	KeyAttr string
	Window  string // duration string; parsed at deployment
	// Fn names the aggregate function (a monoid registered in
	// internal/monoid: count, sum, min, max, avg, set, distinct, freq).
	// Empty means count, the historical default.
	Fn string
	// ValueAttr names the attribute the aggregate consumes; empty for
	// count.
	ValueAttr string
	// Final marks the MergeAgg root of an aggregation tree: it emits the
	// flat operator's <group> records instead of forwarding partials.
	Final bool
}

// desc renders the spec for labels and signatures: "key/window" for
// count (keeping the historical rendering stable) and
// "fn(value):key/window" otherwise.
func (g *GroupSpec) desc() string {
	if g.Fn == "" || g.Fn == "count" {
		return fmt.Sprintf("%s/%s", g.KeyAttr, g.Window)
	}
	return fmt.Sprintf("%s(%s):%s/%s", g.Fn, g.ValueAttr, g.KeyAttr, g.Window)
}

// Ident renders the aggregate's identity — function, value, key and
// window, independent of which sources feed it. Partial-aggregation
// streams of the same logical aggregate are indexed under this label so
// containment queries (aggregate-tree sharing) find them in one lookup.
func (g *GroupSpec) Ident() string { return g.desc() }

// FlatGroupSignature is the signature of a flat Group over a union of
// the given source streams. The Final root of a decomposed aggregation
// tree publishes under this identity: it emits exactly the records the
// flat operator would have, so later flat Group plans over the same
// source set match tree-deployed work without knowing the tree shape.
func FlatGroupSignature(g *GroupSpec, sourceSigs []string) string {
	union := (&Node{Op: OpUnion}).SignatureWith(sourceSigs)
	flat := &Node{Op: OpGroup, Group: g}
	return flat.SignatureWith([]string{union})
}

// PublishSpec lists the notification targets of the BY clause.
type PublishSpec struct {
	Targets []p2pml.ByTarget
	// ChannelID is the channel under which the result stream is
	// published (always present: even email/file publication flows
	// through a result channel so other tasks can reuse the stream).
	ChannelID string
}

// NewAlerter builds an alerter source node (placed at the monitored peer
// by definition).
func NewAlerter(fn, kind, peer, variable string, args []*xmltree.Node) *Node {
	return &Node{
		Op: OpAlerter, Peer: peer, Schema: []string{variable},
		Alerter: &AlerterSpec{Func: fn, Kind: kind, Peer: peer, Args: args},
	}
}

// Label renders the operator with its parameters, e.g. "σ[$c1.callee = ...]".
func (n *Node) Label() string {
	switch n.Op {
	case OpAlerter:
		return fmt.Sprintf("%s@%s", alerterShort(n.Alerter), n.Alerter.Peer)
	case OpDynAlerter:
		return fmt.Sprintf("dyn:%s", alerterShort(n.Alerter))
	case OpChannelIn:
		return "chan:" + n.Channel.String()
	case OpSelect:
		return "σ[" + condString(n.Select.Conds) + "]"
	case OpRestruct:
		if n.Restruct.Expr != nil {
			return "Π[" + n.Restruct.Expr.String() + "]"
		}
		return "Π[template]"
	case OpUnion:
		return "∪"
	case OpJoin:
		if n.Join.LeftKey != nil {
			return fmt.Sprintf("⋈[%s = %s%s]", n.Join.LeftKey.String(), n.Join.RightKey.String(), residualSuffix(n.Join))
		}
		return "⋈[" + condString(n.Join.Residual) + "]"
	case OpDistinct:
		return "Distinct"
	case OpGroup:
		return "γ[" + n.Group.desc() + "]"
	case OpPartialAgg:
		return "γp[" + n.Group.desc() + "]"
	case OpMergeAgg:
		if n.Group.Final {
			return "γm![" + n.Group.desc() + "]"
		}
		return "γm[" + n.Group.desc() + "]"
	case OpPublish:
		parts := make([]string, len(n.Publish.Targets))
		for i, t := range n.Publish.Targets {
			parts[i] = t.String()
		}
		return "publisher[" + strings.Join(parts, "; ") + "]"
	}
	return n.Op.String()
}

func residualSuffix(j *JoinSpec) string {
	if len(j.Residual) == 0 {
		return ""
	}
	return "; " + condString(j.Residual)
}

func alerterShort(a *AlerterSpec) string {
	switch a.Kind {
	case "ws-in":
		return "in"
	case "ws-out":
		return "out"
	}
	return a.Func
}

func condString(conds []p2pml.Condition) string {
	parts := make([]string, len(conds))
	for i, c := range conds {
		parts[i] = c.String()
	}
	return strings.Join(parts, " and ")
}

// String renders the plan in the paper's nested algebra notation, e.g.
//
//	publisher@p(Π@meteo.com(⋈@meteo.com(∪@b.com(σ@a.com(out@a.com), ...), ...)))
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b)
	return b.String()
}

func (n *Node) render(b *strings.Builder) {
	switch n.Op {
	case OpAlerter:
		fmt.Fprintf(b, "%s@%s", alerterShort(n.Alerter), n.Alerter.Peer)
		return
	case OpChannelIn:
		fmt.Fprintf(b, "chan(%s)", n.Channel.String())
		return
	}
	sym := map[OpKind]string{
		OpSelect: "σ", OpRestruct: "Π", OpUnion: "∪", OpJoin: "⋈",
		OpDistinct: "δ", OpGroup: "γ", OpPublish: "publisher", OpDynAlerter: "dyn",
		OpPartialAgg: "γp", OpMergeAgg: "γm",
	}[n.Op]
	b.WriteString(sym)
	b.WriteString("@")
	b.WriteString(n.Peer)
	b.WriteString("(")
	for i, in := range n.Inputs {
		if i > 0 {
			b.WriteString(", ")
		}
		in.render(b)
	}
	b.WriteString(")")
}

// Tree renders an indented multi-line view with full operator labels.
func (n *Node) Tree() string {
	var b strings.Builder
	n.tree(&b, 0)
	return b.String()
}

func (n *Node) tree(b *strings.Builder, depth int) {
	fmt.Fprintf(b, "%s%s @%s", strings.Repeat("  ", depth), n.Label(), n.Peer)
	if len(n.Schema) > 0 {
		fmt.Fprintf(b, "  vars=%v", n.Schema)
	}
	b.WriteByte('\n')
	for _, in := range n.Inputs {
		in.tree(b, depth+1)
	}
}

// Walk visits the plan tree bottom-up (inputs before node).
func (n *Node) Walk(fn func(*Node)) {
	for _, in := range n.Inputs {
		in.Walk(fn)
	}
	fn(n)
}

// Count returns the number of operators in the plan.
func (n *Node) Count() int {
	c := 0
	n.Walk(func(*Node) { c++ })
	return c
}

// Signature returns a placement-independent canonical description of the
// stream this node computes: operator parameters plus input signatures.
// Two nodes with equal signatures compute equivalent streams over the
// same sources, which is what the stream-reuse algorithm matches on.
func (n *Node) Signature() string {
	var b strings.Builder
	n.signature(&b)
	return b.String()
}

func (n *Node) signature(b *strings.Builder) {
	sigs := make([]string, len(n.Inputs))
	for i, in := range n.Inputs {
		var sb strings.Builder
		in.signature(&sb)
		sigs[i] = sb.String()
	}
	b.WriteString(n.SignatureWith(sigs))
}

// SignatureWith renders the node's own operator description composed with
// explicit input signatures. Reuse and deployment use it to build
// signatures over *published* definitions, so a stream derived from a
// reused channel gets the same signature as one derived from the original
// computation.
//
// Signatures normalize the algebraic equivalences the system recognizes
// (a first answer to the paper's open "issue of stream equivalence"):
// condition order within σ and ⋈ residuals, and input order of ∪, do not
// affect a stream's identity.
func (n *Node) SignatureWith(inputSigs []string) string {
	var b strings.Builder
	switch n.Op {
	case OpAlerter:
		// Alerters are bound to their monitored peer: the peer is part of
		// the identity of the source stream.
		fmt.Fprintf(&b, "%s(%s)", n.Alerter.Func, n.Alerter.Peer)
		return b.String()
	case OpChannelIn:
		fmt.Fprintf(&b, "chan(%s)", n.Channel.String())
		return b.String()
	case OpUnion:
		// ∪ is commutative: sort the input signatures so reordered unions
		// are detected as the same stream.
		inputSigs = append([]string(nil), inputSigs...)
		sort.Strings(inputSigs)
	}
	b.WriteString(n.Op.String())
	b.WriteString("{")
	switch n.Op {
	case OpSelect:
		b.WriteString(normalizedConds(n.Select.Conds))
	case OpJoin:
		if n.Join.LeftKey != nil {
			fmt.Fprintf(&b, "%s=%s", n.Join.LeftKey.String(), n.Join.RightKey.String())
		}
		if len(n.Join.Residual) > 0 {
			b.WriteString(";")
			b.WriteString(normalizedConds(n.Join.Residual))
		}
	case OpRestruct:
		if n.Restruct.Expr != nil {
			b.WriteString(n.Restruct.Expr.String())
		} else {
			b.WriteString(n.Restruct.Template.String())
		}
	case OpGroup, OpPartialAgg:
		b.WriteString(n.Group.desc())
	case OpMergeAgg:
		fmt.Fprintf(&b, "%s/final=%t", n.Group.desc(), n.Group.Final)
	}
	b.WriteString("}(")
	for i, sig := range inputSigs {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(sig)
	}
	b.WriteString(")")
	return b.String()
}

// normalizedConds renders conditions sorted so that condition order does
// not affect signatures.
func normalizedConds(conds []p2pml.Condition) string {
	parts := make([]string, len(conds))
	for i, c := range conds {
		parts[i] = c.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, " and ")
}

// Clone deep-copies the plan structure (specs are shared: they are
// immutable after compilation).
func (n *Node) Clone() *Node {
	cp := *n
	cp.Inputs = make([]*Node, len(n.Inputs))
	for i, in := range n.Inputs {
		cp.Inputs[i] = in.Clone()
	}
	cp.Schema = append([]string(nil), n.Schema...)
	return &cp
}
