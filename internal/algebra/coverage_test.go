package algebra

import (
	"strings"
	"testing"

	"p2pm/internal/p2pml"
	"p2pm/internal/stream"
	"p2pm/internal/xmltree"
)

// Exercises for rendering, signature and optimizer paths that the main
// behavioural tests reach only partially.

func TestLabelsForEveryOperator(t *testing.T) {
	sub := p2pml.MustParse(`for $a in outCOM(<p>x</p>), $b in inCOM(<p>y</p>)
where $a.callId = $b.callId and $a.t < $b.t and $a.m = "Q"
return distinct <r v="{$a.callId}"/>
group on "v" window "1m"
by publish as channel "out" and email "ops@x"`)
	plan, err := Compile(sub)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[OpKind]bool{}
	plan.Walk(func(n *Node) {
		seen[n.Op] = true
		if n.Label() == "" {
			t.Errorf("empty label for %v", n.Op)
		}
	})
	for _, op := range []OpKind{OpAlerter, OpJoin, OpSelect, OpRestruct, OpDistinct, OpGroup, OpPublish} {
		if !seen[op] {
			t.Errorf("operator %v missing from plan:\n%s", op, plan.Tree())
		}
	}
	// Join label shows the key and the residual.
	var join *Node
	plan.Walk(func(n *Node) {
		if n.Op == OpJoin {
			join = n
		}
	})
	if !strings.Contains(join.Label(), "=") || !strings.Contains(join.Label(), ";") {
		t.Errorf("join label = %q", join.Label())
	}
	// ChannelIn and DynAlerter labels.
	chIn := &Node{Op: OpChannelIn, Channel: stream.Ref{StreamID: "s", PeerID: "p"}}
	if chIn.Label() != "chan:s@p" {
		t.Errorf("chan label = %q", chIn.Label())
	}
	dyn := &Node{Op: OpDynAlerter, Alerter: &AlerterSpec{Func: "inCOM", Kind: "ws-in"}}
	if !strings.Contains(dyn.Label(), "dyn:") {
		t.Errorf("dyn label = %q", dyn.Label())
	}
}

func TestSignatureWithGroupAndDistinct(t *testing.T) {
	sub := p2pml.MustParse(`for $e in inCOM(<p>m</p>)
return distinct <r k="{$e.callId}"/>
group on "k" window "30s"
by channel C`)
	plan, err := Compile(sub)
	if err != nil {
		t.Fatal(err)
	}
	sig := plan.Inputs[0].Signature()
	for _, want := range []string{"Group{k/30s}", "Distinct{}", "Restructure{"} {
		if !strings.Contains(sig, want) {
			t.Errorf("signature missing %q: %s", want, sig)
		}
	}
}

func TestThreeVarConditionStaysAboveJoin(t *testing.T) {
	// A condition spanning three variables cannot enter any single join:
	// pushdown must park it in a σ directly above the outermost join.
	sub := p2pml.MustParse(`for $a in outCOM(<p>x</p>), $b in inCOM(<p>y</p>), $c in inCOM(<p>z</p>)
where $a.callId = $b.callId and $b.callId = $c.callId and $a.n + $b.n < $c.n
return <r/> by channel C`)
	plan, err := Compile(sub)
	if err != nil {
		t.Fatal(err)
	}
	opt := Optimize(plan, DefaultOptions("p"))
	var aboveJoin *Node
	opt.Walk(func(n *Node) {
		if n.Op == OpSelect && len(n.Inputs) == 1 && n.Inputs[0].Op == OpJoin {
			aboveJoin = n
		}
	})
	if aboveJoin == nil {
		t.Fatalf("three-variable σ missing:\n%s", opt.Tree())
	}
	if len(aboveJoin.Schema) != 3 {
		t.Errorf("σ schema = %v", aboveJoin.Schema)
	}
}

func TestRestructApplyErrorPaths(t *testing.T) {
	// Π over a malformed spec errors cleanly.
	bad := &RestructSpec{}
	apply := RestructApply([]string{"e"}, bad)
	if _, err := apply(xmltree.Elem("x")); err == nil {
		t.Error("empty spec should error")
	}
	// Bare expression yielding a scalar wraps in <value>.
	expr, err := p2pml.ParseExpr(`$e.k`)
	if err != nil {
		t.Fatal(err)
	}
	apply = RestructApply([]string{"e"}, &RestructSpec{Expr: expr})
	in := xmltree.Elem("alert")
	in.SetAttr("k", "42")
	out, err := apply(in)
	if err != nil || out.Label != "value" || out.InnerText() != "42" {
		t.Errorf("out=%v err=%v", out, err)
	}
	// Missing attribute in a bare expression drops the item silently.
	out, err = apply(xmltree.Elem("alert"))
	if err != nil || out != nil {
		t.Errorf("missing attr: out=%v err=%v", out, err)
	}
	// Tuple for the wrong schema errors.
	if _, err := apply(BuildTuple([]string{"z"}, []*xmltree.Node{xmltree.Elem("q")})); err == nil {
		t.Error("schema mismatch accepted")
	}
}

func TestMergeLetsDeduplicates(t *testing.T) {
	e1, _ := p2pml.ParseExpr(`1 + 1`)
	a := []p2pml.LetBinding{{Var: "x", Expr: e1}}
	b := []p2pml.LetBinding{{Var: "x", Expr: e1}, {Var: "y", Expr: e1}}
	got := mergeLets(a, b)
	if len(got) != 2 || got[0].Var != "x" || got[1].Var != "y" {
		t.Errorf("merged = %v", got)
	}
}

func TestOpKindStrings(t *testing.T) {
	for op := OpAlerter; op <= OpPublish; op++ {
		if op.String() == "" {
			t.Errorf("OpKind %d has no name", int(op))
		}
	}
}

func TestNewAlerterConstructor(t *testing.T) {
	n := NewAlerter("inCOM", "ws-in", "m.com", "e", nil)
	if n.Op != OpAlerter || n.Peer != "m.com" || n.Schema[0] != "e" {
		t.Errorf("node = %+v", n)
	}
	if n.Signature() != "inCOM(m.com)" {
		t.Errorf("sig = %s", n.Signature())
	}
}
