package algebra

import (
	"p2pm/internal/p2pml"
)

// Options configures optimization.
type Options struct {
	// SubscriberPeer hosts the publisher (the peer that accepted the
	// subscription, p in Figure 4).
	SubscriberPeer string
	// Pushdown enables selection pushdown toward the sources (the paper's
	// "selections were pushed as much as possible to the proximity of the
	// sources to save on communications"). Disabled only for the C5
	// baseline measurement.
	Pushdown bool
}

// DefaultOptions returns the standard optimizer configuration.
func DefaultOptions(subscriber string) Options {
	return Options{SubscriberPeer: subscriber, Pushdown: true}
}

// Optimize rewrites the plan in place using algebraic rewrite rules
// (selection pushdown, σ-merging) and the placement heuristics of
// Section 3.4, and returns it. After Optimize every operator is concrete:
// no peer is left @any.
func Optimize(plan *Node, opts Options) *Node {
	if opts.Pushdown {
		plan = pushdown(plan)
	}
	place(plan, opts.SubscriberPeer)
	return plan
}

// pushdown pushes each σ condition as close to its source as the schemas
// allow: through joins into the side that binds the condition's
// variables, and through unions into every branch.
func pushdown(n *Node) *Node {
	for i := range n.Inputs {
		n.Inputs[i] = pushdown(n.Inputs[i])
	}
	if n.Op != OpSelect {
		return n
	}
	var remaining []p2pml.Condition
	for _, cond := range n.Select.Conds {
		if !tryPush(n, 0, cond, n.Select.Lets) {
			remaining = append(remaining, cond)
		}
	}
	if len(remaining) == 0 {
		return n.Inputs[0]
	}
	n.Select.Conds = remaining
	return n
}

// tryPush attempts to place cond strictly below parent (into or under
// parent.Inputs[idx]). It reports whether the condition was absorbed.
func tryPush(parent *Node, idx int, cond p2pml.Condition, lets []p2pml.LetBinding) bool {
	child := parent.Inputs[idx]
	vars := condStreamVars(cond, lets)
	if len(vars) == 0 || !subset(vars, child.Schema) {
		return false
	}
	switch child.Op {
	case OpSelect:
		// Merge into the existing σ rather than stacking single-condition
		// selections.
		child.Select.Conds = append(child.Select.Conds, cond)
		child.Select.Lets = mergeLets(child.Select.Lets, letsNeeded(cond, lets))
		return true
	case OpJoin:
		switch {
		case subset(vars, child.Inputs[0].Schema):
			if !tryPush(child, 0, cond, lets) {
				wrapSelect(child, 0, cond, lets)
			}
		case subset(vars, child.Inputs[1].Schema):
			if !tryPush(child, 1, cond, lets) {
				wrapSelect(child, 1, cond, lets)
			}
		default:
			// Spans both sides: park it directly above the join.
			wrapSelect(parent, idx, cond, lets)
		}
		return true
	case OpUnion:
		for i := range child.Inputs {
			if !tryPush(child, i, cond, lets) {
				wrapSelect(child, i, cond, lets)
			}
		}
		return true
	case OpAlerter, OpChannelIn, OpDynAlerter, OpRestruct:
		wrapSelect(parent, idx, cond, lets)
		return true
	}
	// Distinct, Group: σ does not commute with these in general
	// (duplicate windows observe the unfiltered stream), so stop here.
	return false
}

// wrapSelect inserts σ[cond] between parent and parent.Inputs[idx].
func wrapSelect(parent *Node, idx int, cond p2pml.Condition, lets []p2pml.LetBinding) {
	child := parent.Inputs[idx]
	parent.Inputs[idx] = &Node{
		Op:     OpSelect,
		Peer:   AnyPeer,
		Inputs: []*Node{child},
		Schema: child.Schema,
		Select: &SelectSpec{Conds: []p2pml.Condition{cond}, Lets: letsNeeded(cond, lets)},
	}
}

// condStreamVars expands a condition's variables through the given LET
// bindings down to stream variables.
func condStreamVars(cond p2pml.Condition, lets []p2pml.LetBinding) []string {
	byVar := make(map[string]p2pml.LetBinding, len(lets))
	for _, l := range lets {
		byVar[l.Var] = l
	}
	seen := make(map[string]bool)
	var out []string
	var expand func(v string)
	expand = func(v string) {
		if l, ok := byVar[v]; ok {
			for _, inner := range l.Expr.Vars() {
				expand(inner)
			}
			return
		}
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, v := range cond.Vars() {
		expand(v)
	}
	return out
}

// letsNeeded filters lets to those a condition references (transitively),
// preserving declaration order.
func letsNeeded(cond p2pml.Condition, lets []p2pml.LetBinding) []p2pml.LetBinding {
	return NeededLets(lets, cond)
}

// NeededLets filters lets to those any of the conditions references
// (transitively), preserving declaration order. A σ carrying exactly
// these bindings is equivalent to one carrying the full set, so rewrites
// that narrow a σ's conditions (pushdown, subsumption residuals) use it
// to keep the narrowed node identical to an equivalently hand-written
// filter.
func NeededLets(lets []p2pml.LetBinding, conds ...p2pml.Condition) []p2pml.LetBinding {
	byVar := make(map[string]p2pml.LetBinding, len(lets))
	for _, l := range lets {
		byVar[l.Var] = l
	}
	needed := make(map[string]bool)
	var mark func(v string)
	mark = func(v string) {
		if l, ok := byVar[v]; ok && !needed[v] {
			needed[v] = true
			for _, inner := range l.Expr.Vars() {
				mark(inner)
			}
		}
	}
	for _, cond := range conds {
		for _, v := range cond.Vars() {
			mark(v)
		}
	}
	var out []p2pml.LetBinding
	for _, l := range lets {
		if needed[l.Var] {
			out = append(out, l)
		}
	}
	return out
}

func mergeLets(a, b []p2pml.LetBinding) []p2pml.LetBinding {
	have := make(map[string]bool, len(a))
	for _, l := range a {
		have[l.Var] = true
	}
	for _, l := range b {
		if !have[l.Var] {
			a = append(a, l)
			have[l.Var] = true
		}
	}
	return a
}

func subset(vars, schema []string) bool {
	if len(vars) == 0 {
		return false
	}
	in := make(map[string]bool, len(schema))
	for _, s := range schema {
		in[s] = true
	}
	for _, v := range vars {
		if !in[v] {
			return false
		}
	}
	return true
}

// place assigns a concrete peer to every operator, bottom-up:
//   - alerters stay at their monitored peer (by definition);
//   - channel inputs are attributed to the publishing peer;
//   - unary processors run where their input runs (no extra transfer);
//   - ∪ and ⋈ run at their last input's peer — matching Figure 4, where
//     the union of a.com/b.com filters runs at b.com and the join at
//     meteo.com;
//   - publishers and dynamic alerter managers run at the subscriber.
func place(n *Node, subscriber string) {
	for _, in := range n.Inputs {
		place(in, subscriber)
	}
	switch n.Op {
	case OpAlerter:
		n.Peer = n.Alerter.Peer
	case OpChannelIn:
		n.Peer = n.Channel.PeerID
	case OpDynAlerter, OpPublish:
		n.Peer = subscriber
	case OpUnion, OpJoin:
		n.Peer = n.Inputs[len(n.Inputs)-1].Peer
	case OpMergeAgg:
		// Tree roots and key-routed interiors carry deliberate placements
		// (the planner's Group peer, DHT routing); re-placement must not
		// drag them to an input's peer.
		if n.Peer == AnyPeer || n.Peer == "" {
			n.Peer = n.Inputs[len(n.Inputs)-1].Peer
		}
	default:
		if len(n.Inputs) > 0 {
			n.Peer = n.Inputs[0].Peer
		} else if n.Peer == AnyPeer {
			n.Peer = subscriber
		}
	}
}
