package algebra

import (
	"strings"
	"testing"

	"p2pm/internal/p2pml"
	"p2pm/internal/xmltree"
)

const figure1 = `for $c1 in outCOM(<p>http://a.com</p><p>http://b.com</p>),
    $c2 in inCOM(<p>http://meteo.com</p>)
let $duration := $c1.responseTimestamp - $c1.callTimestamp
where $duration > 10 and
      $c1.callMethod = "GetTemperature" and
      $c1.callee = "http://meteo.com" and
      $c1.callId = $c2.callId
return <incident type="slowAnswer">
         <client>{$c1.caller}</client>
         <tstamp>{$c2.callTimestamp}</tstamp>
       </incident>
by publish as channel "alertQoS";`

func compileFigure1(t *testing.T) *Node {
	t.Helper()
	plan, err := Compile(p2pml.MustParse(figure1))
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestCompileFigure1NaiveShape(t *testing.T) {
	plan := compileFigure1(t)
	// publisher(Π(σ(⋈(∪(out@a, out@b), in@meteo)))) with all
	// single-variable conditions still in the top σ.
	if plan.Op != OpPublish {
		t.Fatalf("root = %v", plan.Op)
	}
	pi := plan.Inputs[0]
	if pi.Op != OpRestruct || pi.Restruct.Template == nil {
		t.Fatalf("below publisher: %v", pi.Op)
	}
	sigma := pi.Inputs[0]
	if sigma.Op != OpSelect || len(sigma.Select.Conds) != 3 {
		t.Fatalf("top σ: %v conds=%d", sigma.Op, len(sigma.Select.Conds))
	}
	if len(sigma.Select.Lets) != 1 || sigma.Select.Lets[0].Var != "duration" {
		t.Fatalf("σ lets = %+v", sigma.Select.Lets)
	}
	join := sigma.Inputs[0]
	if join.Op != OpJoin {
		t.Fatalf("join missing: %v", join.Op)
	}
	if join.Join.LeftKey == nil || join.Join.LeftKey.String() != "$c1.callId" ||
		join.Join.RightKey.String() != "$c2.callId" {
		t.Fatalf("join keys: %+v", join.Join)
	}
	if len(join.Schema) != 2 || join.Schema[0] != "c1" || join.Schema[1] != "c2" {
		t.Fatalf("join schema = %v", join.Schema)
	}
	union := join.Inputs[0]
	if union.Op != OpUnion || len(union.Inputs) != 2 {
		t.Fatalf("union: %v", union.Op)
	}
	if union.Inputs[0].Alerter.Peer != "a.com" || union.Inputs[1].Alerter.Peer != "b.com" {
		t.Fatalf("alerter peers: %s, %s", union.Inputs[0].Alerter.Peer, union.Inputs[1].Alerter.Peer)
	}
	right := join.Inputs[1]
	if right.Op != OpAlerter || right.Alerter.Kind != "ws-in" || right.Alerter.Peer != "meteo.com" {
		t.Fatalf("right source: %+v", right.Alerter)
	}
}

// TestOptimizeFigure4Placement checks that optimization reproduces the
// distributed plan of Figure 4: selections pushed to a.com and b.com, the
// union at b.com, the join and Π at meteo.com, the publisher at p.
func TestOptimizeFigure4Placement(t *testing.T) {
	plan := Optimize(compileFigure1(t), DefaultOptions("p"))
	got := plan.String()
	want := "publisher@p(Π@meteo.com(⋈@meteo.com(∪@b.com(σ@a.com(out@a.com), σ@b.com(out@b.com)), in@meteo.com)))"
	if got != want {
		t.Errorf("plan =\n  %s\nwant\n  %s", got, want)
	}
	// No operator may remain generic after optimization.
	plan.Walk(func(n *Node) {
		if n.Peer == AnyPeer {
			t.Errorf("operator %s left @any", n.Label())
		}
	})
	// Each pushed σ carries all three c1 conditions and the LET binding.
	plan.Walk(func(n *Node) {
		if n.Op == OpSelect {
			if len(n.Select.Conds) != 3 {
				t.Errorf("σ@%s has %d conds, want 3", n.Peer, len(n.Select.Conds))
			}
			if len(n.Select.Lets) != 1 {
				t.Errorf("σ@%s lost the LET binding", n.Peer)
			}
		}
	})
}

func TestOptimizeWithoutPushdownKeepsTopSelect(t *testing.T) {
	plan := Optimize(compileFigure1(t), Options{SubscriberPeer: "p", Pushdown: false})
	pi := plan.Inputs[0]
	sigma := pi.Inputs[0]
	if sigma.Op != OpSelect || len(sigma.Select.Conds) != 3 {
		t.Fatalf("expected top σ preserved, got %s", plan.Tree())
	}
	// Placement still concrete: σ runs where the join runs.
	if sigma.Peer != "meteo.com" {
		t.Errorf("σ peer = %s", sigma.Peer)
	}
}

func TestCompileSingleSourceNoJoin(t *testing.T) {
	plan, err := Compile(p2pml.MustParse(
		`for $e in inCOM(<p>m.com</p>) where $e.callMethod = "Q" return $e by channel X`))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Op != OpPublish || plan.Publish.ChannelID != "X" {
		t.Fatalf("publish = %+v", plan.Publish)
	}
	pi := plan.Inputs[0]
	if pi.Restruct.Expr == nil {
		t.Fatal("bare return should compile to an expression Π")
	}
	sigma := pi.Inputs[0]
	if sigma.Op != OpSelect || sigma.Inputs[0].Op != OpAlerter {
		t.Fatalf("shape: %s", plan.Tree())
	}
	opt := Optimize(plan, DefaultOptions("mgr"))
	if got := opt.String(); got != "publisher@mgr(Π@m.com(σ@m.com(in@m.com)))" {
		t.Errorf("optimized = %s", got)
	}
}

func TestCompileDistinct(t *testing.T) {
	plan, err := Compile(p2pml.MustParse(
		`for $e in inCOM(<p>m.com</p>) return distinct <a>{$e.caller}</a> by channel X`))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Inputs[0].Op != OpDistinct {
		t.Fatalf("distinct missing: %s", plan.Tree())
	}
}

func TestCompileNestedSource(t *testing.T) {
	plan, err := Compile(p2pml.MustParse(
		`for $x in ( for $y in inCOM(<p>m.com</p>) where $y.callMethod = "Q" return <q>{$y.caller}</q> )
		 where $x/q
		 return $x by channel Out`))
	if err != nil {
		t.Fatal(err)
	}
	// The nested plan's Π feeds the outer σ; its schema is the outer var.
	var innerPi *Node
	plan.Walk(func(n *Node) {
		if n.Op == OpRestruct && n.Restruct.Template != nil {
			innerPi = n
		}
	})
	if innerPi == nil || len(innerPi.Schema) != 1 || innerPi.Schema[0] != "x" {
		t.Fatalf("inner Π schema: %+v", innerPi)
	}
}

func TestCompileChannelSource(t *testing.T) {
	plan, err := Compile(p2pml.MustParse(
		`for $x in channel("alertQoS@meteo.com") return $x by file "f"`))
	if err != nil {
		t.Fatal(err)
	}
	var ch *Node
	plan.Walk(func(n *Node) {
		if n.Op == OpChannelIn {
			ch = n
		}
	})
	if ch == nil || ch.Channel.StreamID != "alertQoS" || ch.Channel.PeerID != "meteo.com" {
		t.Fatalf("channel node: %+v", ch)
	}
	opt := Optimize(plan, DefaultOptions("mgr"))
	if ch.Peer != "meteo.com" {
		t.Errorf("channel input peer = %s", ch.Peer)
	}
	_ = opt
}

func TestCompileDynamicMembership(t *testing.T) {
	plan, err := Compile(p2pml.MustParse(
		`for $j in areRegistered(<p>s.com</p>)
		 for $c in inCOM($j)
		 return $c by channel W`))
	if err != nil {
		t.Fatal(err)
	}
	var dyn *Node
	plan.Walk(func(n *Node) {
		if n.Op == OpDynAlerter {
			dyn = n
		}
	})
	if dyn == nil {
		t.Fatalf("no DynAlerter: %s", plan.Tree())
	}
	if dyn.Inputs[0].Op != OpAlerter || dyn.Inputs[0].Alerter.Kind != "membership" {
		t.Fatalf("driver: %s", plan.Tree())
	}
	Optimize(plan, DefaultOptions("mgr"))
	if dyn.Peer != "mgr" {
		t.Errorf("dyn peer = %s", dyn.Peer)
	}
}

func TestSignatureStableAcrossConditionOrder(t *testing.T) {
	a, err := Compile(p2pml.MustParse(
		`for $e in inCOM(<p>m</p>) where $e.a = "1" and $e.b = "2" return $e by channel X`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(p2pml.MustParse(
		`for $e in inCOM(<p>m</p>) where $e.b = "2" and $e.a = "1" return $e by channel X`))
	if err != nil {
		t.Fatal(err)
	}
	sigA := a.Inputs[0].Inputs[0].Signature() // the σ nodes
	sigB := b.Inputs[0].Inputs[0].Signature()
	if sigA != sigB {
		t.Errorf("signatures differ:\n%s\n%s", sigA, sigB)
	}
}

func TestSignatureDiffersAcrossPeers(t *testing.T) {
	a, _ := Compile(p2pml.MustParse(`for $e in inCOM(<p>m1</p>) return $e by channel X`))
	b, _ := Compile(p2pml.MustParse(`for $e in inCOM(<p>m2</p>) return $e by channel X`))
	if a.Inputs[0].Signature() == b.Inputs[0].Signature() {
		t.Error("different monitored peers must give different signatures")
	}
}

func TestSignaturePlacementIndependent(t *testing.T) {
	p1 := compileFigure1(t)
	p2 := Optimize(compileFigure1(t), DefaultOptions("p"))
	// The join node's signature must be identical before and after
	// optimization-placement... but pushdown changes the tree shape, so
	// compare the alerter signatures which are never rewritten.
	var a1, a2 string
	p1.Walk(func(n *Node) {
		if n.Op == OpAlerter && n.Alerter.Peer == "a.com" {
			a1 = n.Signature()
		}
	})
	p2.Walk(func(n *Node) {
		if n.Op == OpAlerter && n.Alerter.Peer == "a.com" {
			a2 = n.Signature()
		}
	})
	if a1 == "" || a1 != a2 {
		t.Errorf("alerter signatures: %q vs %q", a1, a2)
	}
}

func TestTupleRoundTrip(t *testing.T) {
	c1 := xmltree.MustParse(`<alert callId="7" caller="a.com"/>`)
	c2 := xmltree.MustParse(`<alert callId="7" callTimestamp="9.5"/>`)
	tuple := BuildTuple([]string{"c1", "c2"}, []*xmltree.Node{c1, c2})
	env, err := ExtractEnv([]string{"c1", "c2"}, tuple)
	if err != nil {
		t.Fatal(err)
	}
	if env.Trees["c1"].AttrOr("caller", "") != "a.com" {
		t.Error("c1 binding lost")
	}
	if env.Trees["c2"].AttrOr("callTimestamp", "") != "9.5" {
		t.Error("c2 binding lost")
	}
}

func TestExtractEnvBareTree(t *testing.T) {
	tree := xmltree.MustParse(`<alert x="1"/>`)
	env, err := ExtractEnv([]string{"e"}, tree)
	if err != nil {
		t.Fatal(err)
	}
	if env.Trees["e"] != tree {
		t.Error("bare tree should bind directly")
	}
}

func TestExtractEnvErrors(t *testing.T) {
	if _, err := ExtractEnv([]string{"a", "b"}, xmltree.Elem("notuple")); err == nil {
		t.Error("non-tuple for multi-var schema accepted")
	}
	tuple := BuildTuple([]string{"a"}, []*xmltree.Node{xmltree.Elem("x")})
	if _, err := ExtractEnv([]string{"a", "b"}, tuple); err == nil {
		t.Error("missing variable accepted")
	}
}

func TestMergeTuplesMixed(t *testing.T) {
	l := xmltree.MustParse(`<alert id="1"/>`)
	rTuple := BuildTuple([]string{"b", "c"}, []*xmltree.Node{xmltree.Elem("x"), xmltree.Elem("y")})
	merged := MergeTuples([]string{"a"}, l, []string{"b", "c"}, rTuple)
	env, err := ExtractEnv([]string{"a", "b", "c"}, merged)
	if err != nil {
		t.Fatal(err)
	}
	if env.Trees["a"].AttrOr("id", "") != "1" || env.Trees["c"].Label != "y" {
		t.Errorf("merged = %s", merged)
	}
}

func TestSelectPredEndToEnd(t *testing.T) {
	sub := p2pml.MustParse(
		`for $e in outCOM(<p>a.com</p>)
		 let $d := $e.responseTimestamp - $e.callTimestamp
		 where $d > 10 and $e.callMethod = "GetTemperature"
		 return $e by channel X`)
	plan, err := Compile(sub)
	if err != nil {
		t.Fatal(err)
	}
	var sigma *Node
	plan.Walk(func(n *Node) {
		if n.Op == OpSelect {
			sigma = n
		}
	})
	pred := SelectPred(sigma.Inputs[0].Schema, sigma.Select)
	slow := xmltree.MustParse(`<alert callMethod="GetTemperature" callTimestamp="5" responseTimestamp="20"/>`)
	fast := xmltree.MustParse(`<alert callMethod="GetTemperature" callTimestamp="5" responseTimestamp="6"/>`)
	wrong := xmltree.MustParse(`<alert callMethod="Other" callTimestamp="5" responseTimestamp="20"/>`)
	noattr := xmltree.MustParse(`<alert/>`)
	if !pred(slow) {
		t.Error("slow call should pass")
	}
	if pred(fast) || pred(wrong) || pred(noattr) {
		t.Error("non-matching alerts passed")
	}
}

func TestJoinKeysAndCombine(t *testing.T) {
	plan := compileFigure1(t)
	var join *Node
	plan.Walk(func(n *Node) {
		if n.Op == OpJoin {
			join = n
		}
	})
	lk, rk := JoinKeys(join.Inputs[0].Schema, join.Inputs[1].Schema, join.Join)
	l := xmltree.MustParse(`<alert callId="42" caller="a.com"/>`)
	r := xmltree.MustParse(`<alert callId="42" callTimestamp="1.5"/>`)
	k1, ok1 := lk(l)
	k2, ok2 := rk(r)
	if !ok1 || !ok2 || k1 != "42" || k1 != k2 {
		t.Fatalf("keys: %q/%v %q/%v", k1, ok1, k2, ok2)
	}
	if _, ok := lk(xmltree.Elem("alert")); ok {
		t.Error("missing key attr should report !ok")
	}
	combined := JoinCombine(join.Inputs[0].Schema, join.Inputs[1].Schema)(l, r)
	env, err := ExtractEnv(join.Schema, combined)
	if err != nil {
		t.Fatal(err)
	}
	if env.Trees["c1"].AttrOr("caller", "") != "a.com" {
		t.Errorf("combined = %s", combined)
	}
}

func TestRestructApplyTemplate(t *testing.T) {
	plan := compileFigure1(t)
	pi := plan.Inputs[0]
	apply := RestructApply(pi.Inputs[0].Schema, pi.Restruct)
	tuple := BuildTuple([]string{"c1", "c2"}, []*xmltree.Node{
		xmltree.MustParse(`<alert caller="a.com"/>`),
		xmltree.MustParse(`<alert callTimestamp="99.5"/>`),
	})
	out, err := apply(tuple)
	if err != nil {
		t.Fatal(err)
	}
	if out.Label != "incident" || out.Child("client").InnerText() != "a.com" ||
		out.Child("tstamp").InnerText() != "99.5" {
		t.Errorf("out = %s", out)
	}
}

func TestRestructApplyBareExprClones(t *testing.T) {
	sub := p2pml.MustParse(`for $e in inCOM(<p>m</p>) return $e by channel X`)
	plan, _ := Compile(sub)
	pi := plan.Inputs[0]
	apply := RestructApply(pi.Inputs[0].Schema, pi.Restruct)
	in := xmltree.MustParse(`<alert x="1"/>`)
	out, err := apply(in)
	if err != nil {
		t.Fatal(err)
	}
	if out == in {
		t.Error("Π must not alias its input")
	}
	if !xmltree.Equal(out, in) {
		t.Errorf("out = %s", out)
	}
}

func TestPlanRenderingHelpers(t *testing.T) {
	plan := Optimize(compileFigure1(t), DefaultOptions("p"))
	tree := plan.Tree()
	for _, want := range []string{"publisher", "⋈", "∪", "σ[", "@meteo.com"} {
		if !strings.Contains(tree, want) {
			t.Errorf("Tree() missing %q:\n%s", want, tree)
		}
	}
	if plan.Count() != 9 {
		t.Errorf("Count = %d, want 9 (pub,Π,⋈,∪,2×σ+2×alerter+1×in)", plan.Count())
	}
	cl := plan.Clone()
	if cl.String() != plan.String() {
		t.Error("clone differs")
	}
	// Mutating the clone must not affect the original.
	cl.Inputs[0].Peer = "elsewhere"
	if plan.Inputs[0].Peer == "elsewhere" {
		t.Error("clone shares nodes")
	}
}

func TestCrossJoinWithoutEquiKey(t *testing.T) {
	sub := p2pml.MustParse(
		`for $a in inCOM(<p>m1</p>), $b in inCOM(<p>m2</p>)
		 where $a.t < $b.t
		 return <pair/> by channel X`)
	plan, err := Compile(sub)
	if err != nil {
		t.Fatal(err)
	}
	var join *Node
	plan.Walk(func(n *Node) {
		if n.Op == OpJoin {
			join = n
		}
	})
	if join.Join.LeftKey != nil {
		t.Error("inequality should not become an equi key")
	}
	if len(join.Join.Residual) != 1 {
		t.Fatalf("residual = %+v", join.Join.Residual)
	}
	res := JoinResidual(join.Inputs[0].Schema, join.Inputs[1].Schema, join.Join)
	l := xmltree.MustParse(`<alert t="1"/>`)
	r := xmltree.MustParse(`<alert t="5"/>`)
	if !res(l, r) || res(r, l) {
		t.Error("residual evaluation wrong")
	}
}
