package algebra

import (
	"fmt"

	"p2pm/internal/p2pml"
	"p2pm/internal/xmltree"
)

// Multi-variable streams carry <tuple> trees: one <bind var="..."> child
// per subscription variable, holding the variable's bound tree. Single
// variable streams carry the alert tree directly, which keeps alerter
// streams in the shape the paper describes (and reusable by other tasks).

// TupleLabel is the root label of tuple items.
const TupleLabel = "tuple"

// BuildTuple wraps trees into a tuple over the given variables.
func BuildTuple(vars []string, trees []*xmltree.Node) *xmltree.Node {
	t := xmltree.Elem(TupleLabel)
	for i, v := range vars {
		bind := xmltree.Elem("bind", trees[i].Clone())
		bind.SetAttr("var", v)
		t.Append(bind)
	}
	return t
}

// MergeTuples joins two items (each possibly a tuple or a bare tree) into
// one tuple over the concatenated schemas.
func MergeTuples(leftSchema []string, left *xmltree.Node, rightSchema []string, right *xmltree.Node) *xmltree.Node {
	t := xmltree.Elem(TupleLabel)
	appendBinds(t, leftSchema, left)
	appendBinds(t, rightSchema, right)
	return t
}

func appendBinds(t *xmltree.Node, schema []string, item *xmltree.Node) {
	if len(schema) == 1 && item.Label != TupleLabel {
		bind := xmltree.Elem("bind", item.Clone())
		bind.SetAttr("var", schema[0])
		t.Append(bind)
		return
	}
	for _, c := range item.Children {
		if c.Label == "bind" {
			t.Append(c.Clone())
		}
	}
}

// ExtractEnv builds the evaluation environment for an item with the given
// schema.
func ExtractEnv(schema []string, item *xmltree.Node) (*p2pml.Env, error) {
	env := p2pml.NewEnv()
	if len(schema) == 1 && item.Label != TupleLabel {
		env.Bind(schema[0], item)
		return env, nil
	}
	if item.Label != TupleLabel {
		return nil, fmt.Errorf("algebra: expected tuple item for schema %v, got <%s>", schema, item.Label)
	}
	for _, c := range item.Children {
		if c.Label != "bind" {
			continue
		}
		v, ok := c.Attr("var")
		if !ok || len(c.Children) == 0 {
			return nil, fmt.Errorf("algebra: malformed bind in tuple")
		}
		env.Bind(v, c.Children[0])
	}
	for _, v := range schema {
		if _, ok := env.Trees[v]; !ok {
			return nil, fmt.Errorf("algebra: tuple missing variable $%s", v)
		}
	}
	return env, nil
}
