package experiments

import (
	"fmt"
	"time"

	"p2pm/internal/stats"
	"p2pm/internal/workload"
)

func init() {
	register("X4", "in-network aggregation trees — per-peer ingest load tree vs flat, and windowed-count completeness under interior crashes, graceful leaves and runtime joins (extension)", runX4)
}

// runX4 measures the aggregation-tree extension.
//
// Ingest table: the same windowed group-by-count query deployed flat
// (one Group operator ingesting every monitored stream — the O(n)
// hotspot, exactly analogous to the home-detector and checkpoint-owner
// hotspots PRs 3–4 eliminated) versus as a DHT-routed partial/merge
// tree: leaves pre-aggregate next to each source, interiors ingest at
// most degree partial streams each. The table reports per-peer operator
// ingest max, mean and max/mean over the candidate aggregation hosts.
//
// Completeness table: the tree under churn — interior-node crashes
// mid-window, graceful leaves, runtime joins (interiors re-parent onto
// the new DHT owners) — with the replay layer on must deliver every
// windowed count exactly, byte-identical to the flat no-churn baseline
// at the same seed. A replay-off crash row shows the contrast: without
// the PR 2 machinery an interior crash destroys its open windows.
func runX4(s Scale) (*Result, error) {
	res := &Result{
		ID:    "X4",
		Claim: `"statistics gathering (e.g. to establish usage-based rankings)" (§2) — extension: windowed group-by aggregation runs in-network along a DHT-routed tree, bounding every peer's ingest near the mean while crash/leave/join churn leaves the counts byte-identical to the flat single-aggregator baseline`,
	}
	sources, workers, events := 12, 6, 192
	window := 24 * time.Second
	crashRates := []int{0, 24, 16}
	growFrom, joinEvery := 3, 24
	leaveEvery := 21
	if s == Quick {
		sources, workers, events = 6, 3, 64
		window = 16 * time.Second
		crashRates = []int{0, 16}
		growFrom, joinEvery = 2, 16
		leaveEvery = 13
	}

	base := func(mode string) workload.AggConfig {
		cfg := workload.DefaultAgg()
		cfg.Mode = mode
		cfg.Sources = sources
		cfg.Workers = workers
		cfg.Events = events
		cfg.Window = window
		return cfg
	}
	run := func(cfg workload.AggConfig) (*workload.AggReport, error) {
		lab, err := workload.SetupAgg(cfg)
		if err != nil {
			return nil, err
		}
		return lab.Run()
	}

	// Per-peer ingest: flat hotspot vs tree, no churn (clean counters).
	ingest := stats.NewTable("per-peer operator ingest, flat aggregator vs DHT-routed tree (no churn)",
		"deployment", "events", "windows", "max ingest/peer", "mean/peer", "max versus mean", "completeness")
	holds := true
	flatRep, err := run(base("flat"))
	if err != nil {
		return nil, err
	}
	treeRep, err := run(base("tree"))
	if err != nil {
		return nil, err
	}
	for _, row := range []struct {
		name string
		rep  *workload.AggReport
	}{{"flat (single Group)", flatRep}, {"tree (degree 3)", treeRep}} {
		ingest.AddRow(row.name, row.rep.Driven, row.rep.Windows, row.rep.IngestMax,
			fmt.Sprintf("%.1f", row.rep.IngestMean),
			fmt.Sprintf("%.2fx", row.rep.IngestRatio()),
			fmt.Sprintf("%.0f%%", row.rep.Completeness()*100))
	}
	res.Tables = append(res.Tables, ingest)
	baseline := fmt.Sprint(flatRep.Records)
	// The acceptance line: identical results, and the tree bounds the
	// hottest peer near the mean (≤3× at full scale) while the flat
	// aggregator's hotspot scales with the fan-in.
	holds = holds && flatRep.Completeness() == 1 && treeRep.Completeness() == 1 &&
		fmt.Sprint(treeRep.Records) == baseline &&
		treeRep.IngestMax < flatRep.IngestMax &&
		treeRep.IngestRatio() <= 3.01 &&
		treeRep.IngestRatio() < flatRep.IngestRatio()

	// Completeness under churn: tree mode, replay on, byte-identity
	// against the flat no-churn baseline at the same seed.
	churn := stats.NewTable("tree-mode windowed-count completeness under churn (replay on)",
		"scenario", "crashes", "leaves", "joins", "repairs", "replayed", "completeness", "identical to flat")
	addRow := func(name string, cfg workload.AggConfig, wantCrashes, wantLeaves, wantJoins bool) error {
		rep, err := run(cfg)
		if err != nil {
			return err
		}
		same := fmt.Sprint(rep.Records) == baseline
		churn.AddRow(name, rep.Crashes, rep.Leaves, rep.Joins, rep.Repairs+rep.LeaveRepairs,
			rep.Replayed, fmt.Sprintf("%.0f%%", rep.Completeness()*100), same)
		holds = holds && rep.Completeness() == 1 && same
		if wantCrashes {
			holds = holds && rep.Crashes > 0 && rep.Replayed > 0 && rep.Repairs > 0
		}
		if wantLeaves {
			holds = holds && rep.Leaves > 0 && rep.LeaveRepairs > 0
		}
		if wantJoins {
			holds = holds && rep.Joins == cfg.Workers-cfg.GrowFrom
		}
		return nil
	}
	for _, rate := range crashRates {
		cfg := base("tree")
		cfg.Replay = true
		cfg.CrashEvery = rate
		name := "no churn"
		if rate > 0 {
			name = fmt.Sprintf("interior crash every %d events", rate)
		}
		if err := addRow(name, cfg, rate > 0, false, false); err != nil {
			return nil, err
		}
	}
	{
		cfg := base("tree")
		cfg.Replay = true
		cfg.LeaveEvery = leaveEvery
		if err := addRow(fmt.Sprintf("graceful leave every %d events", leaveEvery), cfg, false, true, false); err != nil {
			return nil, err
		}
	}
	{
		cfg := base("tree")
		cfg.Replay = true
		cfg.GrowFrom = growFrom
		cfg.JoinEvery = joinEvery
		if err := addRow(fmt.Sprintf("grow %d→%d workers (interiors re-parent)", growFrom, workers), cfg, false, false, true); err != nil {
			return nil, err
		}
	}
	res.Tables = append(res.Tables, churn)

	// The contrast row: replay off, an interior crash destroys its open
	// windows — the lossless rows above are the PR 2 machinery working,
	// not the scenario being too gentle.
	contrast := stats.NewTable("interior crash without the replay layer (the contrast)",
		"scenario", "crashes", "completeness")
	cfg := base("tree")
	cfg.CrashEvery = crashRates[len(crashRates)-1]
	if cfg.CrashEvery == 0 {
		cfg.CrashEvery = 16
	}
	lossy, err := run(cfg)
	if err != nil {
		return nil, err
	}
	contrast.AddRow("tree, replay off", lossy.Crashes, fmt.Sprintf("%.0f%%", lossy.Completeness()*100))
	holds = holds && lossy.Crashes > 0 && lossy.Completeness() < 1
	res.Tables = append(res.Tables, contrast)

	// Accuracy vs bytes: the same distinct-users query computed exactly
	// (set monoid — the partial state is the whole value set) versus as a
	// HyperLogLog sketch (constant-bounded partials). Sketch error here
	// is deterministic — the registers depend only on the value set — so
	// the ≤2% gate is a reproducible acceptance line, not a coin flip.
	users := 64
	sketch := stats.NewTable(fmt.Sprintf("distinct-count over %d users: exact set vs HyperLogLog sketch (tree mode)", users),
		"variant", "groups", "crashes", "completeness", "max rel err", "mean rel err", "bytes on wire")
	addSketchRow := func(name string, cfg workload.AggConfig) (*workload.AggReport, error) {
		cfg.Users = users
		rep, err := run(cfg)
		if err != nil {
			return nil, err
		}
		maxRE, meanRE := "exact", "exact"
		if rep.SketchGroups > 0 {
			maxRE = fmt.Sprintf("%.2f%%", rep.MaxRelErr*100)
			meanRE = fmt.Sprintf("%.2f%%", rep.MeanRelErr*100)
		}
		sketch.AddRow(name, rep.ExpectedGroups, rep.Crashes,
			fmt.Sprintf("%.0f%%", rep.Completeness()*100), maxRE, meanRE, rep.Traffic.Bytes)
		holds = holds && rep.Completeness() == 1
		if rep.SketchGroups > 0 {
			holds = holds && rep.MaxRelErr <= 0.02
		}
		return rep, nil
	}
	{
		cfg := base("tree")
		cfg.Fn = "set"
		if _, err := addSketchRow("exact (set monoid)", cfg); err != nil {
			return nil, err
		}
	}
	{
		cfg := base("tree")
		cfg.Fn = "distinct"
		rep, err := addSketchRow("HyperLogLog sketch", cfg)
		if err != nil {
			return nil, err
		}
		holds = holds && rep.SketchGroups == rep.ExpectedGroups
	}
	{
		cfg := base("tree")
		cfg.Fn = "distinct"
		cfg.Replay = true
		cfg.CrashEvery = crashRates[len(crashRates)-1]
		if cfg.CrashEvery == 0 {
			cfg.CrashEvery = 16
		}
		rep, err := addSketchRow("HyperLogLog, interior crashes (replay on)", cfg)
		if err != nil {
			return nil, err
		}
		holds = holds && rep.Crashes > 0
	}
	res.Tables = append(res.Tables, sketch)

	res.Notes = append(res.Notes,
		"tree construction: PartialAgg leaves co-located with each source (raw events never cross the network), MergeAgg interiors placed by DHT key routing with fan-in <= degree, Final root re-emits the flat operator's records (docs/AGGREGATION.md)",
		"repair re-derives an interior's host from its routing key against the current ring; joins and graceful leaves re-parent interiors the same way (System.RebalanceAggTrees)",
		"exactly-once across interior migrations rides the PR 2 cursor+checkpoint machinery: partial-state snapshots restore, inputs replay from checkpointed cursors, downstream cursors deduplicate the overlap",
		"counts are commutative deltas, so partials may split across emissions and merge in any order without changing the final windows — the algebraic property the whole tree rests on",
		fmt.Sprintf("byte-identity is checked against the flat no-churn baseline at the same seed: %d records", len(flatRep.Records)),
		"accuracy vs bytes: each HLL estimate is scored against the exact distinct count replayed from the drive schedule; partial-state size is where the sketch pays off — the set monoid's partials grow with the value set while HLL is bounded at ~8 KB dense (at this toy cardinality the exact sets are still small, so the wire totals stay comparable; the bound is the point)")
	res.Holds = holds
	return res, nil
}
