package experiments

import (
	"fmt"

	"p2pm/internal/stats"
	"p2pm/internal/workload"
)

func init() {
	register("X2", "self-healing under churn — completeness and failover latency vs crash rate, by replay and detector mode, plus detector survivability under a partitioned home (extension)", runX2)
}

// runX2 measures the churn extension: a subscription whose relay
// operator is repeatedly killed while events flow. The monitor must
// detect each death, migrate the operator (ACME-style: the monitor
// tolerates the failures it observes), and keep delivering results.
//
// Two axes. Replay: off is PR 1's lossy fail-stop (outage windows are
// the completeness loss), on retransmits every loss after migration.
// Detector: "home" is one heartbeat detector at a single peer, "gossip"
// is PR 3's SWIM-style decentralized detection with a quorum-confirmed
// membership view — it must match home mode's lossless completeness at
// every churn rate while spreading the detection load.
//
// The survivability table is the reason gossip exists: the peer a home
// detector lives on is partitioned away, then the relay actually
// crashes. Gossip detection keeps working (completeness stays 100%
// with replay); the home detector goes blind, its silence-is-death
// rule kills the healthy peers, and the run demonstrably loses data.
func runX2(s Scale) (*Result, error) {
	res := &Result{
		ID:    "X2",
		Claim: `"P2P systems are characterized by their dynamicity: peers join and leave" (§1) — extension: the monitor self-heals under that dynamicity; with replay the healing is lossless at every crash rate in BOTH detector modes, and only decentralized (gossip) detection survives the loss of the detector's own host`,
	}
	events := 120
	rates := []int{0, 30, 15, 8}
	partRate := 15
	if s == Quick {
		events, rates, partRate = 40, []int{0, 12}, 12
	}
	table := stats.NewTable("churn rate vs result completeness and failover latency",
		"crash every", "replay", "detector", "crashes", "repairs", "completeness", "replayed", "mean detect (s)", "msgs", "dropped")
	holds := true
	type mode struct {
		replay   bool
		detector string
	}
	modes := []mode{{false, "home"}, {true, "home"}, {true, "gossip"}}
	for _, k := range rates {
		for _, m := range modes {
			cfg := workload.DefaultChurn()
			cfg.Events = events
			cfg.CrashEvery = k
			cfg.Replay = m.replay
			cfg.Detector = m.detector
			lab, err := workload.SetupChurn(cfg)
			if err != nil {
				return nil, err
			}
			rep, err := lab.Run()
			if err != nil {
				return nil, err
			}
			label := "never"
			if k > 0 {
				label = fmt.Sprintf("%d events", k)
			}
			onOff := "off"
			if m.replay {
				onOff = "on"
			}
			table.AddRow(label, onOff, m.detector, rep.Crashes, rep.Repairs,
				fmt.Sprintf("%.0f%%", rep.Completeness()*100),
				rep.Replayed,
				fmt.Sprintf("%.1f", rep.DetectionLatency.Mean()),
				rep.Traffic.Messages, rep.Traffic.Dropped)
			switch {
			case k == 0:
				// The baseline must be perfect in every mode: no churn, no
				// loss, no deaths invented by the detector.
				holds = holds && rep.Completeness() == 1 && rep.Crashes == 0 && rep.Deaths == 0
			case m.replay:
				// The goal line, identical for home and gossip: under
				// churn, replay recovers every outage window — completeness
				// is exactly 100% and the recovery is genuine
				// retransmission, not luck.
				holds = holds && rep.Crashes > 0 &&
					rep.Deaths == rep.Crashes &&
					rep.Repairs >= rep.Crashes &&
					rep.Completeness() == 1 &&
					rep.Replayed > 0
			default:
				// Lossy mode: every crash is detected and repaired, results
				// keep flowing, and the only loss is the outage windows.
				holds = holds && rep.Crashes > 0 &&
					rep.Deaths == rep.Crashes &&
					rep.Repairs >= rep.Crashes &&
					rep.Completeness() > 0.3 && rep.Completeness() < 1
			}
		}
	}
	res.Tables = append(res.Tables, table)

	// Detector survivability: the old home peer is partitioned away
	// early in the run; the relay crash schedule continues. Replay is on
	// in both rows — any loss is a detection failure, not a transport
	// one.
	surv := stats.NewTable("detector survivability — home peer partitioned mid-run (replay on)",
		"detector", "crashes", "repairs", "completeness", "mean detect (s)", "deaths declared")
	for _, det := range []string{"home", "gossip"} {
		cfg := workload.DefaultChurn()
		cfg.Events = events
		cfg.CrashEvery = partRate
		cfg.Replay = true
		cfg.Detector = det
		cfg.PartitionHomeAfter = events / 8
		lab, err := workload.SetupChurn(cfg)
		if err != nil {
			return nil, err
		}
		rep, err := lab.Run()
		if err != nil {
			return nil, err
		}
		surv.AddRow(det, rep.Crashes, rep.Repairs,
			fmt.Sprintf("%.0f%%", rep.Completeness()*100),
			fmt.Sprintf("%.1f", rep.DetectionLatency.Mean()),
			rep.Deaths)
		if det == "gossip" {
			// Gossip must still inject, detect and repair relay crashes
			// with the old home cut off, ending lossless.
			holds = holds && rep.Crashes > 0 &&
				rep.Repairs >= rep.Crashes &&
				rep.Completeness() == 1
		} else {
			// The home detector demonstrably fails this case: blinded by
			// the partition, it mass-false-positives the healthy peers and
			// the run loses data.
			holds = holds && rep.Completeness() < 1
		}
	}
	res.Tables = append(res.Tables, surv)

	res.Notes = append(res.Notes,
		"replay off: loss per crash is bounded by the outage window (suspicion timeout × event rate); results driven while the relay is healthy always arrive",
		"replay on: the relay's input replays from the upstream retention buffer at re-deploy (resuming from the replicated checkpoint) and consumer cursors deduplicate the overlap — completeness 100% with bounded buffers",
		"gossip detection: each peer probes a random Fanout-sized subset per period (O(1)/peer vs O(n) at the home hotspot), escalates through k proxies, and the supervisor acts on a quorum-confirmed view — same lossless completeness, no single point of blindness",
		"survivability: with the home peer partitioned, home mode's silence-is-death rule kills healthy peers while gossip keeps detecting real crashes (docs/DETECTOR.md)",
		"failover prefers peers that announced a replica of the affected stream (Section 5's InChannel records)")
	res.Holds = holds
	return res, nil
}
