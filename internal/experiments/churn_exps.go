package experiments

import (
	"fmt"

	"p2pm/internal/stats"
	"p2pm/internal/workload"
)

func init() {
	register("X2", "self-healing under churn — result completeness and failover latency vs crash rate, with and without replay (extension)", runX2)
}

// runX2 measures the churn extension: a subscription whose relay
// operator is repeatedly killed while events flow. The monitor must
// detect each death, migrate the operator (ACME-style: the monitor
// tolerates the failures it observes), and keep delivering results. Each
// crash rate runs twice — replay off (PR 1's lossy fail-stop: the outage
// windows are the completeness loss) and replay on (upstream replay
// buffers + operator checkpointing: every loss is retransmitted after
// the migration). The paper itself assumes a healthy network; the
// monitoring semantics it does assume — the query result a centralized
// evaluator would compute — is what the replay column restores to 100%.
func runX2(s Scale) (*Result, error) {
	res := &Result{
		ID:    "X2",
		Claim: `"P2P systems are characterized by their dynamicity: peers join and leave" (§1) — extension: the monitor self-heals under that dynamicity; with replay buffers and checkpointing the healing is lossless (completeness 100%), without them the loss is bounded by the outage windows`,
	}
	events := 120
	rates := []int{0, 30, 15, 8}
	if s == Quick {
		events, rates = 40, []int{0, 12}
	}
	table := stats.NewTable("churn rate vs result completeness and failover latency",
		"crash every", "replay", "crashes", "repairs", "completeness", "replayed", "mean detect (s)", "msgs", "dropped")
	holds := true
	for _, k := range rates {
		for _, replay := range []bool{false, true} {
			cfg := workload.DefaultChurn()
			cfg.Events = events
			cfg.CrashEvery = k
			cfg.Replay = replay
			lab, err := workload.SetupChurn(cfg)
			if err != nil {
				return nil, err
			}
			rep, err := lab.Run()
			if err != nil {
				return nil, err
			}
			label := "never"
			if k > 0 {
				label = fmt.Sprintf("%d events", k)
			}
			onOff := "off"
			if replay {
				onOff = "on"
			}
			table.AddRow(label, onOff, rep.Crashes, rep.Repairs,
				fmt.Sprintf("%.0f%%", rep.Completeness()*100),
				rep.Replayed,
				fmt.Sprintf("%.1f", rep.DetectionLatency.Mean()),
				rep.Traffic.Messages, rep.Traffic.Dropped)
			switch {
			case k == 0:
				// The baseline must be perfect either way: no churn, no loss.
				holds = holds && rep.Completeness() == 1 && rep.Crashes == 0
			case replay:
				// The goal line: under churn, replay recovers every outage
				// window — completeness is exactly 100% and the recovery is
				// genuine retransmission, not luck.
				holds = holds && rep.Crashes > 0 &&
					rep.Deaths == rep.Crashes &&
					rep.Repairs >= rep.Crashes &&
					rep.Completeness() == 1 &&
					rep.Replayed > 0
			default:
				// Lossy mode: every crash is detected and repaired, results
				// keep flowing, and the only loss is the outage windows.
				holds = holds && rep.Crashes > 0 &&
					rep.Deaths == rep.Crashes &&
					rep.Repairs >= rep.Crashes &&
					rep.Completeness() > 0.3 && rep.Completeness() < 1
			}
		}
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		"replay off: loss per crash is bounded by the outage window (suspicion timeout × event rate); results driven while the relay is healthy always arrive",
		"replay on: the relay's input replays from the upstream retention buffer at re-deploy (resuming from the replicated checkpoint) and consumer cursors deduplicate the overlap — completeness 100% with bounded buffers",
		"failover prefers peers that announced a replica of the affected stream (Section 5's InChannel records)")
	res.Holds = holds
	return res, nil
}
