package experiments

import (
	"fmt"

	"p2pm/internal/stats"
	"p2pm/internal/workload"
)

func init() {
	register("X2", "self-healing under churn — result completeness and failover latency vs crash rate (extension)", runX2)
}

// runX2 measures the churn extension: a subscription whose relay
// operator is repeatedly killed while events flow. The monitor must
// detect each death, migrate the operator (ACME-style: the monitor
// tolerates the failures it observes), and keep delivering results; the
// table reports completeness and failover latency as the crash rate
// grows. The paper itself assumes a healthy network — this is the
// reproduction's answer to the churn that defines real P2P systems.
func runX2(s Scale) (*Result, error) {
	res := &Result{
		ID:    "X2",
		Claim: `"P2P systems are characterized by their dynamicity: peers join and leave" (§1) — extension: the monitor self-heals under that dynamicity, trading a bounded completeness loss per crash`,
	}
	events := 120
	rates := []int{0, 30, 15, 8}
	if s == Quick {
		events, rates = 40, []int{0, 12}
	}
	table := stats.NewTable("churn rate vs result completeness and failover latency",
		"crash every", "crashes", "repairs", "completeness", "mean detect (s)", "msgs", "dropped")
	holds := true
	for _, k := range rates {
		cfg := workload.DefaultChurn()
		cfg.Events = events
		cfg.CrashEvery = k
		lab, err := workload.SetupChurn(cfg)
		if err != nil {
			return nil, err
		}
		rep, err := lab.Run()
		if err != nil {
			return nil, err
		}
		label := "never"
		if k > 0 {
			label = fmt.Sprintf("%d events", k)
		}
		table.AddRow(label, rep.Crashes, rep.Repairs,
			fmt.Sprintf("%.0f%%", rep.Completeness()*100),
			fmt.Sprintf("%.1f", rep.DetectionLatency.Mean()),
			rep.Traffic.Messages, rep.Traffic.Dropped)
		if k == 0 {
			// The baseline must be perfect: no churn, no loss.
			holds = holds && rep.Completeness() == 1 && rep.Crashes == 0
		} else {
			// Under churn: every crash is detected and repaired, results
			// keep flowing, and the only loss is the outage windows.
			holds = holds && rep.Crashes > 0 &&
				rep.Deaths == rep.Crashes &&
				rep.Repairs >= rep.Crashes &&
				rep.Completeness() > 0.3 && rep.Completeness() < 1
		}
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		"loss per crash is bounded by the outage window (suspicion timeout × event rate); results driven while the relay is healthy always arrive",
		"failover prefers peers that announced a replica of the affected stream (Section 5's InChannel records)")
	res.Holds = holds
	return res, nil
}
