package experiments

import (
	"fmt"
	"time"

	"p2pm/internal/algebra"
	"p2pm/internal/peer"
	"p2pm/internal/stats"
	"p2pm/internal/xmltree"
)

func init() {
	register("X1", "subsumption reuse — streams holding sufficient data (paper future work)", runX1)
}

// runX1 measures the implemented future-work extension: a family of
// subscriptions whose condition sets nest (base ⊂ base∧c1 ⊂ base∧c1∧c2
// ...) is deployed with subsumption reuse on and off. With it, each new
// task deploys only a residual filter over the previous stream.
func runX1(s Scale) (*Result, error) {
	res := &Result{
		ID:    "X1",
		Claim: `"We are also interested in detecting and reusing streams that hold sufficient data" (§7, future work — implemented here as subsumption reuse)`,
	}
	depth := 5
	calls := 30
	if s == Quick {
		depth, calls = 3, 10
	}
	table := stats.NewTable("nested condition chains, subsumption on vs off",
		"chain depth", "ops (subsume)", "ops (no reuse)", "alerters (subsume)", "results equal")
	holds := true
	for d := 2; d <= depth; d++ {
		run := func(reuseOn bool) (ops, alerters int, results []int, err error) {
			opts := peer.DefaultConfig()
			opts.Reuse = reuseOn
			sys := peer.MustSystem(opts)
			m := sys.MustAddPeer("m.com")
			m.Endpoint().Register("Q", func(*xmltree.Node) (*xmltree.Node, error) {
				return xmltree.Elem("ok"), nil
			}, nil)
			callers := []string{"c0.com", "c1.com", "c2.com", "c3.com", "c4.com"}
			for _, c := range callers {
				sys.MustAddPeer(c)
			}
			var tasks []*peer.Task
			for i := 0; i < d; i++ {
				mgr := sys.MustAddPeer(fmt.Sprintf("mgr-%d", i))
				// Task i requires callMethod=Q plus i nested caller
				// exclusions — each set strictly contains the previous.
				where := `$e.callMethod = "Q"`
				for j := 0; j < i; j++ {
					where += fmt.Sprintf(` and $e.caller != "http://%s"`, callers[j])
				}
				t, err := mgr.Subscribe(fmt.Sprintf(
					`for $e in inCOM(<p>m.com</p>) where %s return $e by publish as channel "c%d"`, where, i))
				if err != nil {
					return 0, 0, nil, err
				}
				tasks = append(tasks, t)
				ops += t.OperatorsDeployed()
			}
			alerters = countAlerters(tasks)
			for i := 0; i < calls; i++ {
				caller := sys.Peer(callers[i%len(callers)])
				if _, err := caller.Endpoint().Invoke("m.com", "Q", nil); err != nil {
					return 0, 0, nil, err
				}
				sys.Net.Clock().Advance(time.Second)
			}
			for _, t := range tasks {
				t.Stop()
			}
			for _, t := range tasks {
				results = append(results, len(t.Results().Drain()))
			}
			return ops, alerters, results, nil
		}
		opsS, alertersS, resultsS, err := run(true)
		if err != nil {
			return nil, err
		}
		opsN, _, resultsN, err := run(false)
		if err != nil {
			return nil, err
		}
		equal := fmt.Sprint(resultsS) == fmt.Sprint(resultsN)
		table.AddRow(d, opsS, opsN, alertersS, equal)
		if !equal || opsS >= opsN || alertersS != 1 {
			holds = false
		}
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		"every chained task deploys one residual σ over its predecessor's stream; exactly one alerter exists",
		"result streams are identical with and without the optimization")
	res.Holds = holds
	return res, nil
}

// countAlerters counts alerter operators across the deployed task plans.
func countAlerters(tasks []*peer.Task) int {
	count := 0
	for _, t := range tasks {
		t.Plan.Walk(func(n *algebra.Node) {
			if n.Op == algebra.OpAlerter {
				count++
			}
		})
	}
	return count
}
