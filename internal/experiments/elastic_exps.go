package experiments

import (
	"fmt"

	"p2pm/internal/stats"
	"p2pm/internal/workload"
)

func init() {
	register("X3", "elastic membership — grow-from-k-to-n completeness vs join rate by detector, and per-peer checkpoint load with vs without virtual-node spreading (extension)", runX3)
}

// runX3 measures the elastic-membership extension, closing the two PR 3
// follow-ups together.
//
// Growth table: the worker pool starts at 4 and grows to full scale
// through the runtime join protocol (gossip dissemination with
// incarnation numbers — no Watch pre-registration) while the crash
// schedule keeps killing the relay. With replay on, both detector modes
// must stay lossless at every join rate: joining is supposed to be
// invisible to the consumers.
//
// Spread table: many parallel pipelines mean many operator checkpoint
// keys. Classic single-token placement concentrates their write traffic
// on whichever ring owners the hash picks; virtual-node tokens plus
// bounded-load placement cap every peer's share at ~2× the mean. The
// table reports the steady-state (post-growth) per-peer checkpoint
// put/get load and the handoff volume each join cost.
func runX3(s Scale) (*Result, error) {
	res := &Result{
		ID:    "X3",
		Claim: `"P2P systems are characterized by their dynamicity: peers join and leave" (§1) — extension: membership is a runtime protocol, not a precondition; a pool growing from 4 workers to full scale stays lossless, and consistent-hash spreading keeps per-peer checkpoint load within 2× the mean`,
	}
	events, workers, growFrom := 120, 10, 4
	joinRates := []int{0, 12, 8} // 0 = spread evenly across the run
	pipelines, loadEvents, loadWorkers := 12, 60, 8
	if s == Quick {
		events, workers = 40, 6
		joinRates = []int{0, 8}
		// 5 pipelines × 2 checkpointed operators over 10 peers: the
		// bounded-load cap ceil(2K/n) is exactly 2× the mean, so the
		// structural guarantee is visible without ceil slack.
		pipelines, loadEvents, loadWorkers = 5, 40, 6
	}

	growth := stats.NewTable("growing the pool from 4 workers to full scale under churn (replay on)",
		"join every", "detector", "joins", "crashes", "repairs", "completeness", "replayed", "mean detect (s)")
	holds := true
	for _, rate := range joinRates {
		for _, det := range []string{"home", "gossip"} {
			cfg := workload.DefaultChurn()
			cfg.Workers = workers
			cfg.GrowFrom = growFrom
			cfg.JoinEvery = rate
			cfg.Events = events
			cfg.CrashEvery = 15
			cfg.Replay = true
			cfg.Detector = det
			lab, err := workload.SetupChurn(cfg)
			if err != nil {
				return nil, err
			}
			rep, err := lab.Run()
			if err != nil {
				return nil, err
			}
			label := "spread evenly"
			if rate > 0 {
				label = fmt.Sprintf("%d events", rate)
			}
			growth.AddRow(label, det, rep.Joins, rep.Crashes, rep.Repairs,
				fmt.Sprintf("%.0f%%", rep.Completeness()*100),
				rep.Replayed,
				fmt.Sprintf("%.1f", rep.DetectionLatency.Mean()))
			// The pool must actually reach full scale, every crash must be
			// detected and repaired, and the growth must be invisible to
			// the consumers: exactly 100% completeness via genuine
			// retransmission.
			holds = holds && rep.Joins == workers-growFrom &&
				rep.Crashes > 0 &&
				rep.Repairs >= rep.Crashes &&
				rep.Completeness() == 1 &&
				rep.Replayed > 0
		}
	}
	res.Tables = append(res.Tables, growth)

	// Checkpoint-load spreading: identical elastic growth (no crashes —
	// the measurement isolates placement), measured after the last join
	// so deployment and growth traffic stay out of the steady-state
	// window.
	spreadT := stats.NewTable("steady-state per-peer checkpoint put/get load, classic vs spread placement",
		"placement", "ckpt ops", "max/peer", "mean/peer", "max versus mean", "handoffs")
	classicRatio := 0.0
	for _, spread := range []bool{false, true} {
		cfg := workload.DefaultChurn()
		cfg.Workers = loadWorkers
		cfg.GrowFrom = growFrom
		cfg.JoinEvery = 10
		cfg.Events = loadEvents
		cfg.CrashEvery = 0
		cfg.Replay = true
		cfg.Detector = "gossip"
		cfg.Pipelines = pipelines
		cfg.Spread = spread
		lab, err := workload.SetupChurn(cfg)
		if err != nil {
			return nil, err
		}
		rep, err := lab.Run()
		if err != nil {
			return nil, err
		}
		load := lab.Sys.DB.CheckpointLoad()
		var total, max uint64
		for _, l := range load {
			total += l.Total()
			if l.Total() > max {
				max = l.Total()
			}
		}
		mean := float64(total) / float64(len(load))
		ratio := float64(max) / mean
		name := "classic (1 token)"
		if spread {
			name = "spread (32 tokens + 2x bound)"
		}
		spreadT.AddRow(name, total, max, fmt.Sprintf("%.1f", mean),
			fmt.Sprintf("%.2fx", ratio), lab.Sys.Ring.Handoffs())
		holds = holds && rep.Completeness() == 1 && total > 0
		if spread {
			// The acceptance line: bounded-load spreading keeps the
			// hottest peer within 2× the mean checkpoint load, and
			// strictly improves on the classic hotspot.
			holds = holds && ratio <= 2.01 && ratio < classicRatio
		} else {
			classicRatio = ratio
		}
	}
	res.Tables = append(res.Tables, spreadT)

	res.Notes = append(res.Notes,
		"join protocol: a new peer contacts any live seed, bootstraps its membership view, and is disseminated to every other view on piggybacked gossip with incarnation numbers — rejoin-after-death adopts an incarnation above the stale death rumor (docs/MEMBERSHIP.md)",
		"joined peers are immediately eligible for DHT key ownership and failover placement; the relay repeatedly migrates onto runtime-admitted workers",
		"same seed ⇒ byte-identical join/crash/dead/recover timelines (ChurnReport.Timeline), with joins enabled",
		"spreading: virtual-node tokens fragment ownership so a join hands off ~K/n keys (Handoffs column), and per-class bounded-load placement caps any peer's checkpoint share at ceil(2K/n) primaries",
		"the 2x guarantee is structural (consistent hashing with bounded loads), not statistical: it holds at any pool size")
	res.Holds = holds
	return res, nil
}
