package experiments

import (
	"fmt"
	"time"

	"p2pm/internal/stats"
	"p2pm/internal/workload"
)

func init() {
	register("X5", "multi-tenant aggregate sharing — operators deployed and per-peer ingest for overlapping windowed-group subscriptions, shared vs unshared, with byte-identity and churn on the shared interiors (extension)", runX5)
}

// runX5 measures the aggregate-sharing extension.
//
// Head-to-head table: a population of overlapping windowed group-by-count
// subscriptions (sliding source ranges over the same monitored peers)
// deployed unshared (each builds its own alerters and aggregation tree)
// versus through the reuse pass (exact duplicates resolve to a channel on
// the existing tree root; contained source sets graft a merge onto the
// already-running partial streams). Both modes must answer every
// subscription byte-identically to the monoid replay of the drive
// schedule; sharing must deploy fewer operators and bound the hottest
// peer's ingest below the unshared hotspot.
//
// Scaling table: shared-mode deployment cost as the population grows.
// Once every distinct range is live, new subscribers are pure channel
// taps, so operators-per-subscription must fall — sublinear growth.
//
// Churn table: crashes, graceful leaves and runtime joins hitting the
// host that carries shared merge state, replay on. An interior here
// feeds many subscriptions at once, so one repair must make every
// tenant whole.
func runX5(s Scale) (*Result, error) {
	res := &Result{
		ID:    "X5",
		Claim: `"to determine which already existing streams may be reused for that task to save CPU consumption and network traffic" (§5) — extension: overlapping windowed-group subscriptions share aggregation trees, so operators deployed grow sublinearly in subscribers and per-peer ingest stays near the single-tree cost, byte-identically and through churn on the shared interiors`,
	}
	sources, workers := 12, 6
	events := 64
	window := 24 * time.Second
	headSubs := 1000
	subsScale := []int{50, 250, 1000}
	churnSubs, churnEvents := 48, 64
	crashEvery, leaveEvery, growFrom := 24, 24, 3
	if s == Quick {
		sources, workers = 6, 4
		events = 48
		window = 16 * time.Second
		headSubs = 24
		subsScale = []int{8, 24}
		churnSubs, churnEvents = 12, 48
		crashEvery, leaveEvery, growFrom = 16, 16, 2
	}

	base := func(mode string, subs int) workload.ShareConfig {
		cfg := workload.DefaultShare()
		cfg.Mode = mode
		cfg.Sources = sources
		cfg.Workers = workers
		cfg.Subs = subs
		cfg.Events = events
		cfg.Window = window
		return cfg
	}
	run := func(cfg workload.ShareConfig) (*workload.ShareReport, error) {
		lab, err := workload.SetupShare(cfg)
		if err != nil {
			return nil, err
		}
		return lab.Run()
	}

	holds := true

	// Head-to-head at the full population: shared vs unshared.
	head := stats.NewTable(fmt.Sprintf("%d overlapping subscriptions, shared vs unshared deployment", headSubs),
		"deployment", "operators", "ops/sub", "reused ops", "lookups", "max ingest/peer", "mean/peer", "byte-identical", "completeness")
	sharedRep, err := run(base("shared", headSubs))
	if err != nil {
		return nil, err
	}
	unsharedRep, err := run(base("unshared", headSubs))
	if err != nil {
		return nil, err
	}
	for _, row := range []struct {
		name string
		rep  *workload.ShareReport
	}{{"shared (reuse pass)", sharedRep}, {"unshared (tree per subscription)", unsharedRep}} {
		head.AddRow(row.name, row.rep.Operators,
			fmt.Sprintf("%.2f", row.rep.OpsPerSub()),
			row.rep.ReusedOps, row.rep.Lookups,
			row.rep.IngestMax, fmt.Sprintf("%.1f", row.rep.IngestMean),
			fmt.Sprintf("%d/%d", row.rep.ByteIdenticalSubs, row.rep.Subs),
			fmt.Sprintf("%.0f%%", row.rep.Completeness()*100))
	}
	res.Tables = append(res.Tables, head)
	// The acceptance line: identical answers in both modes, sharing
	// deploys a small fraction of the operators and keeps the hottest
	// peer well under the unshared hotspot, and no lookup ever failed
	// (failed discovery degrades to unshared — allowed, but it would
	// mean the descriptors are wrong).
	holds = holds &&
		sharedRep.ByteIdenticalSubs == sharedRep.Subs &&
		unsharedRep.ByteIdenticalSubs == unsharedRep.Subs &&
		sharedRep.ReusedOps > 0 && sharedRep.FailedLookups == 0 &&
		sharedRep.Operators*2 < unsharedRep.Operators &&
		sharedRep.IngestMax < unsharedRep.IngestMax

	// Scaling: shared-mode deployment cost must grow sublinearly — once
	// every distinct range is live, later subscribers are channel taps.
	scaling := stats.NewTable("shared-mode deployment cost as the population grows",
		"subscriptions", "operators", "ops/sub", "reused ops", "byte-identical")
	var opsPerSub []float64
	scaleOps := map[int]int{}
	for _, n := range subsScale {
		var rep *workload.ShareReport
		if n == headSubs {
			rep = sharedRep // same config: reuse the head-to-head run
		} else {
			rep, err = run(base("shared", n))
			if err != nil {
				return nil, err
			}
		}
		scaling.AddRow(rep.Subs, rep.Operators, fmt.Sprintf("%.2f", rep.OpsPerSub()),
			rep.ReusedOps, fmt.Sprintf("%d/%d", rep.ByteIdenticalSubs, rep.Subs))
		opsPerSub = append(opsPerSub, rep.OpsPerSub())
		scaleOps[rep.Subs] = rep.Operators
		holds = holds && rep.ByteIdenticalSubs == rep.Subs && rep.FailedLookups == 0
	}
	res.Tables = append(res.Tables, scaling)
	for i := 1; i < len(opsPerSub); i++ {
		holds = holds && opsPerSub[i] < opsPerSub[i-1]
	}
	// Sublinearity across the extremes: growing the population by k× must
	// grow the operator count by clearly less than k×. (At full scale the
	// distinct ranges are exhausted early and the count plateaus, so the
	// real ratio is near 1; Quick's population is too small to plateau,
	// hence the softer 0.75 factor.)
	small, big := subsScale[0], subsScale[len(subsScale)-1]
	holds = holds && float64(scaleOps[big])/float64(scaleOps[small]) < float64(big)/float64(small)*0.75

	// Churn on the shared interiors: one interior feeds many tenants, so
	// every repair has to make all of them whole (replay on throughout).
	churn := stats.NewTable(fmt.Sprintf("churn on shared interiors, %d subscriptions (replay on)", churnSubs),
		"scenario", "crashes", "leaves", "joins", "repairs", "replayed", "byte-identical", "completeness")
	churnRow := func(name string, mutate func(*workload.ShareConfig), wantCrashes, wantLeaves, wantJoins bool) error {
		cfg := base("shared", churnSubs)
		cfg.Events = churnEvents
		mutate(&cfg)
		rep, err := run(cfg)
		if err != nil {
			return err
		}
		churn.AddRow(name, rep.Crashes, rep.Leaves, rep.Joins, rep.Repairs+rep.LeaveRepairs,
			rep.Replayed, fmt.Sprintf("%d/%d", rep.ByteIdenticalSubs, rep.Subs),
			fmt.Sprintf("%.0f%%", rep.Completeness()*100))
		holds = holds && rep.ByteIdenticalSubs == rep.Subs && rep.FailedLookups == 0
		if wantCrashes {
			holds = holds && rep.Crashes > 0
		}
		if wantLeaves {
			holds = holds && rep.Leaves > 0
		}
		if wantJoins {
			holds = holds && rep.Joins == workers-growFrom
		}
		return nil
	}
	if err := churnRow("no churn", func(*workload.ShareConfig) {}, false, false, false); err != nil {
		return nil, err
	}
	if err := churnRow(fmt.Sprintf("shared-interior crash every %d events", crashEvery),
		func(c *workload.ShareConfig) { c.CrashEvery = crashEvery }, true, false, false); err != nil {
		return nil, err
	}
	if err := churnRow(fmt.Sprintf("graceful leave every %d events", leaveEvery),
		func(c *workload.ShareConfig) { c.LeaveEvery = leaveEvery }, false, true, false); err != nil {
		return nil, err
	}
	if err := churnRow(fmt.Sprintf("grow %d→%d workers (interiors re-parent)", growFrom, workers),
		func(c *workload.ShareConfig) { c.GrowFrom = growFrom }, false, false, true); err != nil {
		return nil, err
	}
	res.Tables = append(res.Tables, churn)

	res.Notes = append(res.Notes,
		"sharing is discovered from the published stream definitions alone: tree roots also publish under the equivalent flat plan's signature (exact duplicates become channel taps), and partial/merge emitters publish their group identity plus source-signature sets (contained source sets graft a final merge onto a disjoint cover of running partials) — docs/REUSE.md",
		"grafted roots publish too, so sharing compounds: the second subscriber to a grafted range taps its root instead of re-grafting",
		"every subscription is scored byte-identically against an independent monoid replay of the drive schedule, not against the other mode — both modes are checked against ground truth",
		"shared interiors are multi-tenant: crash repair rides the replica/cursor machinery, and planned moves (joins, graceful leaves) re-bind every consumer's channel subscription across task boundaries (System.RebalanceAggTrees + stale-channel sweep)",
		"partial streams are only safe to graft for subscribers deployed before events flow — a late subscriber would miss already-closed windows under the watermark rule — so the lab deploys the whole population up front; late arrivals exact-match final streams instead, which replay from the cursor store",
		fmt.Sprintf("population: subscription 0 spans all %d sources; subscription j covers a sliding range of length 2+(j-1) mod %d — duplicates, strict prefixes and partial overlaps all occur", sources, sources-1))
	res.Holds = holds
	return res, nil
}
