package experiments

import (
	"fmt"
	"time"

	"p2pm/internal/filter"
	"p2pm/internal/stats"
	"p2pm/internal/workload"
	"p2pm/internal/xmltree"
	"p2pm/internal/xpath"
)

func init() {
	register("C1", "filter throughput vs number of subscriptions", runC1)
	register("C2", "two-stage filtering ablation", runC2)
	register("C3", "AES hash-tree vs linear condition scan", runC3)
	register("C4", "YFilter shared NFA vs independent path evaluation", runC4)
	register("C6", "lazy ActiveXML materialization", runC6)
}

func subCounts(s Scale) []int {
	if s == Quick {
		return []int{100, 1000}
	}
	return []int{100, 1000, 10000, 50000, 100000}
}

// buildFilter populates a filter with n generated subscriptions.
func buildFilter(n int, complexFrac float64) (*filter.Filter, *workload.FilterGen) {
	cfg := workload.DefaultFilterGen()
	cfg.ComplexFraction = complexFrac
	gen := workload.NewFilterGen(cfg)
	f := filter.New()
	for _, s := range gen.Subscriptions(n) {
		if err := f.Add(s); err != nil {
			panic(err)
		}
	}
	return f, gen
}

func perDoc(docs []*xmltree.Node, f *filter.Filter, mode filter.Mode) (time.Duration, int, error) {
	start := time.Now()
	matches := 0
	for _, d := range docs {
		ids, err := f.MatchMode(d, mode)
		if err != nil {
			return 0, 0, err
		}
		matches += len(ids)
	}
	return time.Since(start) / time.Duration(len(docs)), matches, nil
}

// perDocBest is perDoc measured twice, keeping the faster sample —
// min-of-N benchmarking, so a scheduling stall from a concurrently
// running test package distorts at most one sample instead of the
// reported number.
func perDocBest(docs []*xmltree.Node, f *filter.Filter, mode filter.Mode) (time.Duration, int, error) {
	best, matches, err := perDoc(docs, f, mode)
	if err != nil {
		return 0, 0, err
	}
	again, _, err := perDoc(docs, f, mode)
	if err != nil {
		return 0, 0, err
	}
	if again < best {
		best = again
	}
	return best, matches, nil
}

// runC1 regenerates the claim "Filter ... can perform efficiently a large
// number of filtering queries over a stream with intense traffic": the
// two-stage filter's per-document cost grows far slower than naive
// per-subscription evaluation as subscriptions are added.
func runC1(s Scale) (*Result, error) {
	res := &Result{
		ID:    "C1",
		Claim: `"The Filter ... can perform efficiently a large number of filtering queries over a stream with intense traffic" (§1, §4)`,
	}
	table := stats.NewTable("per-document filtering cost vs #subscriptions",
		"subs", "two-stage µs/doc", "naive µs/doc", "speedup", "matches")
	nDocs := 200
	if s == Quick {
		nDocs = 50
	}
	holds := true
	var lastSpeedup float64
	for _, n := range subCounts(s) {
		f, gen := buildFilter(n, 0.3)
		docs := gen.Documents(nDocs)
		two, m1, err := perDocBest(docs, f, filter.ModeTwoStage)
		if err != nil {
			return nil, err
		}
		naive, m2, err := perDocBest(docs, f, filter.ModeNaive)
		if err != nil {
			return nil, err
		}
		if m1 != m2 {
			return nil, fmt.Errorf("C1: result mismatch: %d vs %d", m1, m2)
		}
		speedup := float64(naive) / float64(two)
		table.AddRow(n, float64(two.Microseconds()), float64(naive.Microseconds()), speedup, m1)
		lastSpeedup = speedup
	}
	// The shape: the two-stage advantage grows with subscription count
	// and is decisive at the largest scale. Quick runs are small and
	// share the CPU with concurrent test packages; a ratio between two
	// measurements taken back-to-back at the same scale is robust to
	// that load, but a trend across rows is not (the first tiny sample's
	// ratio is easily distorted by warmup and scheduling) — so quick
	// mode only asserts that two-stage wins at the largest scale.
	if s == Quick {
		holds = lastSpeedup > 1
	} else if lastSpeedup < 1.5 {
		holds = false
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes, "speedup grows with subscription count; absolute µs depend on host")
	res.Holds = holds
	return res, nil
}

// runC2 regenerates the two-stage design claim: checking simple
// conditions first ("evaluated on the fly") and running the pruned
// YFilter only on survivors beats running YFilter for everything, which
// beats naive evaluation.
func runC2(s Scale) (*Result, error) {
	res := &Result{
		ID:    "C2",
		Claim: `"it checks separately simple test conditions, evaluated on the fly, and more complex ones that require the use of an XML query processor" (§1, §4)`,
	}
	n := 10000
	nDocs := 100
	if s == Quick {
		n, nDocs = 1000, 30
	}
	table := stats.NewTable(fmt.Sprintf("ablation at %d subscriptions", n),
		"complex frac", "two-stage µs/doc", "yfilter-only µs/doc", "naive µs/doc")
	holds := true
	for _, frac := range []float64{0, 0.25, 0.5, 1.0} {
		f, gen := buildFilter(n, frac)
		docs := gen.Documents(nDocs)
		two, c1, err := perDocBest(docs, f, filter.ModeTwoStage)
		if err != nil {
			return nil, err
		}
		yfo, c2, err := perDocBest(docs, f, filter.ModeYFilterOnly)
		if err != nil {
			return nil, err
		}
		naive, c3, err := perDocBest(docs, f, filter.ModeNaive)
		if err != nil {
			return nil, err
		}
		if c1 != c2 || c2 != c3 {
			return nil, fmt.Errorf("C2: modes disagree: %d/%d/%d", c1, c2, c3)
		}
		table.AddRow(frac, float64(two.Microseconds()), float64(yfo.Microseconds()), float64(naive.Microseconds()))
		// The two-stage design must beat both ablations. The tolerance
		// absorbs µs-scale timer noise (wider at Quick scale, where runs
		// share the CPU with concurrent test packages). Which *ablation*
		// is worse varies with the mix: naive short-circuits on simple
		// conditions, so it can beat an unpruned YFilter at high complex
		// fractions — an honest secondary finding in EXPERIMENTS.md.
		tol := 1.3
		if s == Quick {
			tol = 3.0
		}
		if float64(two) > tol*float64(yfo) || float64(two) > tol*float64(naive) {
			holds = false
		}
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		"expected: two-stage ≤ both ablations on every row",
		"at complex frac 0 the two-stage filter never parses beyond the first tag")
	res.Holds = holds
	return res, nil
}

// runC3 regenerates "[the AES] organization scales with the number of
// subscriptions": probes per document stay bounded by the satisfied
// conditions, not by the total subscription count.
func runC3(s Scale) (*Result, error) {
	res := &Result{
		ID:    "C3",
		Claim: `"As shown in [15], this organization scales with the number of subscriptions" (§4, AESFilter)`,
	}
	table := stats.NewTable("AES probes vs linear scan",
		"subs", "distinct conds", "AES probes/doc", "linear checks/doc", "ratio")
	nDocs := 100
	if s == Quick {
		nDocs = 30
	}
	holds := true
	for _, n := range subCounts(s) {
		f, gen := buildFilter(n, 0) // simple-only: isolate the AES
		docs := gen.Documents(nDocs)
		for _, d := range docs {
			if _, err := f.Match(d); err != nil {
				return nil, err
			}
		}
		st := f.Stats()
		probesPerDoc := float64(st.AESProbes) / float64(nDocs)
		// The linear baseline checks every subscription's conditions.
		cfg := workload.DefaultFilterGen()
		linearPerDoc := float64(n * cfg.CondsPerSub)
		table.AddRow(n, st.PreFilterEvals/uint64(nDocs), probesPerDoc, linearPerDoc, linearPerDoc/probesPerDoc)
		if probesPerDoc >= linearPerDoc {
			holds = false
		}
	}
	res.Tables = append(res.Tables, table)
	res.Holds = holds
	return res, nil
}

// runC4 regenerates the YFilter sharing claim: the shared NFA's size and
// per-document transitions grow sub-linearly in the number of queries
// thanks to common-prefix sharing, unlike independent evaluation.
func runC4(s Scale) (*Result, error) {
	res := &Result{
		ID:    "C4",
		Claim: `"this is a most efficient organization that scales with the number of subscriptions because it groups path queries based on their common linear prefixes" (§4, YFilterσ)`,
	}
	counts := []int{100, 1000, 10000}
	nDocs := 50
	if s == Quick {
		counts = []int{100, 1000}
		nDocs = 20
	}
	table := stats.NewTable("shared NFA vs independent path evaluation",
		"queries", "NFA states", "states/query", "shared µs/doc", "independent µs/doc")
	holds := true
	gen := workload.NewFilterGen(workload.DefaultFilterGen())
	for _, n := range counts {
		yf := filter.NewYFilter()
		queries := make([]*xpath.Path, 0, n)
		for i := 0; i < n; i++ {
			q := gen.Query()
			if err := yf.Add(i, q); err != nil {
				return nil, err
			}
			queries = append(queries, q)
		}
		docs := gen.Documents(nDocs)
		// Min-of-2 samples, like perDocBest: a scheduling stall from a
		// concurrent test package distorts at most one sample.
		measure := func(f func()) time.Duration {
			best := time.Duration(0)
			for rep := 0; rep < 2; rep++ {
				start := time.Now()
				f()
				d := time.Since(start) / time.Duration(nDocs)
				if rep == 0 || d < best {
					best = d
				}
			}
			return best
		}
		shared := measure(func() {
			for _, d := range docs {
				yf.MatchAll(d)
			}
		})
		indep := measure(func() {
			for _, d := range docs {
				for _, q := range queries {
					q.Matches(d, nil)
				}
			}
		})
		statesPerQuery := float64(yf.States()) / float64(n)
		table.AddRow(n, yf.States(), statesPerQuery, float64(shared.Microseconds()), float64(indep.Microseconds()))
		if shared >= indep {
			holds = false
		}
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes, "states/query shrinking with n demonstrates prefix sharing")
	res.Holds = holds
	return res, nil
}

// runC6 regenerates the Section 4 ActiveXML strategy: when simple
// conditions already reject a document, the embedded service call is
// never made; eager materialization calls it for every document.
func runC6(s Scale) (*Result, error) {
	res := &Result{
		ID:    "C6",
		Claim: `"Our strategy avoids the unnecessary call to service storage@site" (§4); ActiveXML "reduc[es] the amount of data that is transferred by providing information intentionally" (§1)`,
	}
	nDocs := 500
	if s == Quick {
		nDocs = 100
	}
	payload := xmltree.MustParse(`<c><d>` + strings200() + `</d></c>`)
	table := stats.NewTable("service calls and bytes fetched vs selectivity",
		"match frac", "lazy calls", "eager calls", "lazy bytes", "eager bytes")
	holds := true
	for _, tenth := range []int{1, 3, 10} { // 10%, 30%, 100% of docs pass the simple stage
		run := func(lazy bool) (calls, bytes int, err error) {
			// materialize simulates calling storage@site: the sc subtree
			// is replaced by the (heavy) payload.
			materialize := func(doc *xmltree.Node) (int, error) {
				n := 0
				for i, c := range doc.Children {
					if c.Label == "sc" {
						doc.Children[i] = payload.Clone()
						n++
						calls++
						bytes += payload.SerializedSize()
					}
				}
				return n, nil
			}
			f := filter.New()
			if lazy {
				f.SetMaterializer(materialize)
			}
			if err := f.Add(filter.Subscription{
				ID:      "q",
				Simple:  []filter.Cond{{Attr: "attr2", Op: xpath.OpEq, Value: "z"}},
				Complex: []*xpath.Path{xpath.MustCompile(`//c/d`)},
			}); err != nil {
				return 0, 0, err
			}
			for i := 0; i < nDocs; i++ {
				doc := xmltree.Elem("root")
				doc.SetAttr("attr1", "x")
				if i%10 < tenth {
					doc.SetAttr("attr2", "z")
				} else {
					doc.SetAttr("attr2", "y")
				}
				doc.Append(xmltree.MustParse(`<sc service="storage" address="site"><parameters/></sc>`))
				if !lazy {
					// Eager baseline: fetch the intensional data for every
					// document before filtering.
					if _, err := materialize(doc); err != nil {
						return 0, 0, err
					}
				}
				if _, err := f.Match(doc); err != nil {
					return 0, 0, err
				}
			}
			return calls, bytes, nil
		}
		lazyCalls, lazyBytes, err := run(true)
		if err != nil {
			return nil, err
		}
		eagerCalls, eagerBytes, err := run(false)
		if err != nil {
			return nil, err
		}
		table.AddRow(float64(tenth)/10, lazyCalls, eagerCalls, lazyBytes, eagerBytes)
		if lazyCalls > eagerCalls {
			holds = false
		}
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes, "lazy calls ≈ match-fraction × docs; eager calls = docs")
	res.Holds = holds
	return res, nil
}

func strings200() string {
	s := "payload-"
	for len(s) < 200 {
		s += "0123456789"
	}
	return s
}
