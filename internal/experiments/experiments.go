// Package experiments regenerates the paper's evaluation artifacts. The
// paper (a workshop paper) publishes no numeric tables — Figures 1–7 are
// architectural — so the reproduction regenerates (a) every figure as a
// runnable scenario and (b) every performance claim made in prose as a
// measured table. EXPERIMENTS.md records claim-vs-measured for each; the
// experiment identifiers (F1–F7, C1–C11) are indexed in DESIGN.md.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"p2pm/internal/stats"
)

// Scale selects experiment sizes.
type Scale int

// Quick finishes each experiment in well under a second (CI); Full uses
// the sizes reported in EXPERIMENTS.md.
const (
	Quick Scale = iota
	Full
)

// Result is one experiment's regenerated output.
type Result struct {
	ID     string
	Claim  string // the paper's claim or figure being regenerated
	Tables []*stats.Table
	Notes  []string
	// Holds reports whether the claim's *shape* held (who wins, direction
	// of effect). Absolute numbers are not expected to match the paper's
	// unreported testbed.
	Holds bool
}

// String renders the result.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "---- %s ----\n", r.ID)
	fmt.Fprintf(&b, "paper: %s\n", r.Claim)
	for _, t := range r.Tables {
		b.WriteString(t.String())
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	verdict := "HOLDS"
	if !r.Holds {
		verdict = "DOES NOT HOLD"
	}
	fmt.Fprintf(&b, "claim shape: %s\n", verdict)
	return b.String()
}

// Runner is one registered experiment.
type Runner struct {
	ID   string
	Name string
	Run  func(Scale) (*Result, error)
}

var registry []Runner

func register(id, name string, run func(Scale) (*Result, error)) {
	registry = append(registry, Runner{ID: id, Name: name, Run: run})
}

// All returns the registered experiments sorted by ID (F* before C*).
func All() []Runner {
	out := append([]Runner(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return ordinal(out[i].ID) < ordinal(out[j].ID) })
	return out
}

// Lookup finds one experiment by ID (case-insensitive).
func Lookup(id string) (Runner, bool) {
	for _, r := range registry {
		if strings.EqualFold(r.ID, id) {
			return r, true
		}
	}
	return Runner{}, false
}

func ordinal(id string) string {
	// F1..F7 sort before C1..C11, which sort before the X extension
	// experiments; digits are padded for numeric order.
	kind := id[:1]
	num := id[1:]
	pad := strings.Repeat("0", 3-len(num)) + num
	switch kind {
	case "F":
		return "0" + pad
	case "C":
		return "1" + pad
	}
	return "2" + pad
}
