package experiments

import (
	"fmt"
	"time"

	"p2pm/internal/dht"
	"p2pm/internal/kadop"
	"p2pm/internal/operators"
	"p2pm/internal/peer"
	"p2pm/internal/stats"
	"p2pm/internal/stream"
	"p2pm/internal/workload"
	"p2pm/internal/xmltree"
)

func init() {
	register("C5", "selection pushdown saves communication", runC5)
	register("C7", "stream reuse saves CPU and network", runC7)
	register("C8", "indexed join history vs linear scan", runC8)
	register("C9", "KadoP stream discovery at scale", runC9)
	register("C10", "join-history garbage collection (future work)", runC10)
	register("C11", "motivating workloads end to end", runC11)
}

// runC5 measures the Figure 4 topology with and without selection
// pushdown, sweeping the fraction of matching (slow) calls.
func runC5(s Scale) (*Result, error) {
	res := &Result{
		ID:    "C5",
		Claim: `"the selections were pushed as much as possible to the proximity of the sources to save on communications" (§3.3)`,
	}
	calls := 60
	if s == Quick {
		calls = 20
	}
	table := stats.NewTable("bytes on the wire vs selectivity (Figure 4 topology)",
		"slow frac", "pushdown bytes", "no-pushdown bytes", "saved %")
	holds := true
	for _, slowEvery := range []int{2, 5, 0 /* never slow */} {
		run := func(pushdown bool) (uint64, error) {
			opts := peer.DefaultConfig()
			opts.Pushdown = pushdown
			opts.Reuse = false
			sys := peer.MustSystem(opts)
			mgr := sys.MustAddPeer("p")
			cfg := workload.DefaultMeteo()
			cfg.Calls = calls
			cfg.SlowEvery = slowEvery
			if err := workload.SetupMeteo(sys, cfg); err != nil {
				return 0, err
			}
			task, err := mgr.Subscribe(workload.MeteoSubscription(cfg.Clients, cfg.Server))
			if err != nil {
				return 0, err
			}
			if _, err := workload.RunMeteo(sys, cfg); err != nil {
				return 0, err
			}
			task.Stop()
			task.Results().Drain()
			return sys.Net.Totals().Bytes, nil
		}
		with, err := run(true)
		if err != nil {
			return nil, err
		}
		without, err := run(false)
		if err != nil {
			return nil, err
		}
		frac := 0.0
		if slowEvery > 0 {
			frac = 1 / float64(slowEvery)
		}
		saved := 100 * (1 - float64(with)/float64(without))
		table.AddRow(frac, with, without, saved)
		if with >= without {
			holds = false
		}
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes, "savings grow as selectivity drops: rejected alerts never leave their source peer")
	res.Holds = holds
	return res, nil
}

// runC7 measures k overlapping subscriptions with and without the reuse
// pass: deployed operators, operator work (items processed) and bytes.
func runC7(s Scale) (*Result, error) {
	res := &Result{
		ID:    "C7",
		Claim: `"to determine which already existing streams may be reused for that task to save CPU consumption and network traffic" (§5)`,
	}
	subscribers := []int{1, 2, 4, 8}
	calls := 40
	if s == Quick {
		subscribers = []int{1, 2, 4}
		calls = 15
	}
	table := stats.NewTable("k identical subscriptions, reuse on vs off",
		"k", "ops (reuse)", "ops (no reuse)", "items (reuse)", "items (no reuse)", "bytes (reuse)", "bytes (no reuse)")
	holds := true
	for _, k := range subscribers {
		run := func(reuseOn bool) (ops int, items uint64, bytes uint64, err error) {
			opts := peer.DefaultConfig()
			opts.Reuse = reuseOn
			sys := peer.MustSystem(opts)
			cfg := workload.DefaultMeteo()
			cfg.Calls = calls
			cfg.SlowEvery = 2
			if err := workload.SetupMeteo(sys, cfg); err != nil {
				return 0, 0, 0, err
			}
			sub := workload.MeteoSubscription(cfg.Clients, cfg.Server)
			var tasks []*peer.Task
			for i := 0; i < k; i++ {
				mgr := sys.MustAddPeer(fmt.Sprintf("mgr-%d", i))
				t, err := mgr.Subscribe(sub)
				if err != nil {
					return 0, 0, 0, err
				}
				tasks = append(tasks, t)
				ops += t.OperatorsDeployed()
			}
			if _, err := workload.RunMeteo(sys, cfg); err != nil {
				return 0, 0, 0, err
			}
			for _, t := range tasks {
				t.Stop()
			}
			for _, t := range tasks {
				t.Results().Drain()
				items += t.ItemsProcessed()
			}
			return ops, items, sys.Net.Totals().Bytes, nil
		}
		opsR, itemsR, bytesR, err := run(true)
		if err != nil {
			return nil, err
		}
		opsN, itemsN, bytesN, err := run(false)
		if err != nil {
			return nil, err
		}
		table.AddRow(k, opsR, opsN, itemsR, itemsN, bytesR, bytesN)
		if k > 1 && (opsR >= opsN || itemsR >= itemsN) {
			holds = false
		}
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes, "with reuse, operator count stays flat in k; without, it grows linearly")
	res.Holds = holds
	return res, nil
}

// runC8 regenerates "An index over that history is used to speed up the
// search" for the Join operator.
func runC8(s Scale) (*Result, error) {
	res := &Result{
		ID:    "C8",
		Claim: `"the history of the other stream is searched ... An index over that history is used to speed up the search" (§3.1, Join)`,
	}
	sizes := []int{1000, 10000, 50000}
	if s == Quick {
		sizes = []int{1000, 5000}
	}
	probesTable := stats.NewTable("probe counts per arriving item",
		"history size", "indexed probes", "scan probes", "indexed µs/item", "scan µs/item")
	holds := true
	for _, size := range sizes {
		mkJoin := func(useIndex bool) (uint64, time.Duration) {
			j := &operators.Join{
				LeftKey:  operators.AttrKey("k"),
				RightKey: operators.AttrKey("k"),
				UseIndex: useIndex,
			}
			sink := func(stream.Item) {}
			for i := 0; i < size; i++ {
				tree := xmltree.Elem("l")
				tree.SetAttr("k", fmt.Sprintf("%d", i))
				j.Accept(0, stream.Item{Tree: tree}, sink)
			}
			probes := 50
			start := time.Now()
			for i := 0; i < probes; i++ {
				tree := xmltree.Elem("r")
				tree.SetAttr("k", fmt.Sprintf("%d", i*7%size))
				j.Accept(1, stream.Item{Tree: tree}, sink)
			}
			return j.Probes() / uint64(probes), time.Since(start) / time.Duration(probes)
		}
		ip, it := mkJoin(true)
		sp, st := mkJoin(false)
		probesTable.AddRow(size, ip, sp, float64(it.Microseconds()), float64(st.Microseconds()))
		if ip >= sp {
			holds = false
		}
	}
	res.Tables = append(res.Tables, probesTable)
	res.Holds = holds
	return res, nil
}

// runC9 regenerates "One can efficiently discover streams of interest
// even when millions of streams have been declared by tens of thousands
// of peers": lookup hops grow logarithmically with peers and are
// insensitive to the number of declared streams.
func runC9(s Scale) (*Result, error) {
	res := &Result{
		ID:    "C9",
		Claim: `"One can efficiently discover streams of interest even when millions of streams have been declared by tens of thousands of peers" (§5)`,
	}
	type point struct{ peers, streams int }
	points := []point{{100, 1000}, {1000, 10000}, {5000, 100000}}
	if s == Quick {
		points = []point{{50, 500}, {200, 2000}}
	}
	table := stats.NewTable("discovery cost vs scale",
		"peers", "streams", "avg hops", "log2(peers)", "µs/lookup")
	holds := true
	for _, pt := range points {
		ring := dht.New()
		for i := 0; i < pt.peers; i++ {
			if err := ring.Join(fmt.Sprintf("peer-%d", i)); err != nil {
				return nil, err
			}
		}
		db := kadop.New(ring)
		for i := 0; i < pt.streams; i++ {
			def := &kadop.StreamDef{
				Ref:       stream.Ref{PeerID: fmt.Sprintf("peer-%d", i%pt.peers), StreamID: fmt.Sprintf("s%d", i)},
				Operator:  "inCOM",
				Signature: fmt.Sprintf("inCOM(peer-%d)#%d", i%pt.peers, i),
			}
			if err := db.Publish(def); err != nil {
				return nil, err
			}
		}
		lookups := 200
		totalHops := 0
		start := time.Now()
		for i := 0; i < lookups; i++ {
			defs, hops, err := db.FindAlerters(fmt.Sprintf("peer-%d", i%pt.peers), fmt.Sprintf("peer-%d", (i*13)%pt.peers), "inCOM")
			if err != nil {
				return nil, err
			}
			if len(defs) == 0 {
				return nil, fmt.Errorf("C9: lost descriptor")
			}
			totalHops += hops
		}
		perLookup := time.Since(start) / time.Duration(lookups)
		avgHops := float64(totalHops) / float64(lookups)
		logPeers := log2(float64(pt.peers))
		table.AddRow(pt.peers, pt.streams, avgHops, logPeers, float64(perLookup.Microseconds()))
		if avgHops > 3*logPeers {
			holds = false
		}
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes, "scaled to laptop memory (paper: millions of streams / tens of thousands of peers); hops ~ O(log peers) is the transferable shape")
	res.Holds = holds
	return res, nil
}

func log2(x float64) float64 {
	n := 0.0
	for x > 1 {
		x /= 2
		n++
	}
	return n
}

// runC10 regenerates the future-work GC claim: a time-window bound on the
// join history caps memory while preserving the matches inside the
// window.
func runC10(s Scale) (*Result, error) {
	res := &Result{
		ID:    "C10",
		Claim: `"defining and implementing an efficient garbage collection mechanism for reducing the storage needed for our stateful stream processors" (§7, future work; window approach after STREAM [13])`,
	}
	n := 20000
	if s == Quick {
		n = 3000
	}
	table := stats.NewTable("join history under a 60s window vs unbounded",
		"items", "peak history (gc)", "peak history (unbounded)", "evicted", "matches gc", "matches unbounded")
	run := func(window time.Duration) (*operators.Join, int) {
		j := &operators.Join{
			LeftKey:  operators.AttrKey("k"),
			RightKey: operators.AttrKey("k"),
			UseIndex: true,
			Window:   window,
		}
		matches := 0
		sink := func(stream.Item) { matches++ }
		for i := 0; i < n; i++ {
			t := time.Duration(i) * time.Second
			l := xmltree.Elem("l")
			l.SetAttr("k", fmt.Sprintf("%d", i))
			j.Accept(0, stream.Item{Tree: l, Time: t}, sink)
			// Partner arrives 30s later: inside the window.
			if i >= 30 {
				r := xmltree.Elem("r")
				r.SetAttr("k", fmt.Sprintf("%d", i-30))
				j.Accept(1, stream.Item{Tree: r, Time: t}, sink)
			}
		}
		return j, matches
	}
	gc, gcMatches := run(60 * time.Second)
	unbounded, ubMatches := run(0)
	table.AddRow(n, gc.PeakHistorySize(), unbounded.PeakHistorySize(), gc.Evicted(), gcMatches, ubMatches)
	res.Tables = append(res.Tables, table)
	res.Holds = gc.PeakHistorySize() < unbounded.PeakHistorySize()/10 && gcMatches == ubMatches
	res.Notes = append(res.Notes, "all partners arrive within the window, so GC loses no matches while memory stays O(window)")
	return res, nil
}

// runC11 runs the two motivating workloads end to end and reports
// monitoring completeness and cost.
func runC11(s Scale) (*Result, error) {
	res := &Result{
		ID:    "C11",
		Claim: `motivations (§1): telecom workflow surveillance and Edos usage statistics`,
	}
	table := stats.NewTable("workload summary",
		"workload", "events driven", "alerts observed", "net msgs", "net bytes")
	holds := true

	// Telecom.
	{
		sys := peer.MustSystem(peer.DefaultConfig())
		cfg := workload.DefaultTelecom()
		if s == Quick {
			cfg.Workflows = 10
		}
		if err := workload.SetupTelecom(sys, cfg); err != nil {
			return nil, err
		}
		mgr := sys.MustAddPeer("noc")
		task, err := mgr.Subscribe(`for $c in outCOM(<p>orchestrator</p>)
return <call wf="{$c.callId}" m="{$c.callMethod}"/> by publish as channel "allCalls"`)
		if err != nil {
			return nil, err
		}
		calls, err := workload.RunTelecom(sys, cfg)
		if err != nil {
			return nil, err
		}
		task.Stop()
		alerts := len(task.Results().Drain())
		tot := sys.Net.Totals()
		table.AddRow("telecom", calls, alerts, tot.Messages, tot.Bytes)
		if alerts != calls {
			holds = false
		}
	}
	// Edos.
	{
		sys := peer.MustSystem(peer.DefaultConfig())
		cfg := workload.DefaultEdos()
		if s == Quick {
			cfg.Downloads, cfg.Queries = 40, 20
		}
		e, err := workload.SetupEdos(sys, cfg)
		if err != nil {
			return nil, err
		}
		mgr := sys.MustAddPeer("noc")
		task, err := mgr.Subscribe(e.StatsSubscription("GetPackage"))
		if err != nil {
			return nil, err
		}
		dl, q, err := e.Run()
		if err != nil {
			return nil, err
		}
		task.Stop()
		alerts := len(task.Results().Drain())
		tot := sys.Net.Totals()
		table.AddRow("edos", dl+q, alerts, tot.Messages, tot.Bytes)
		if alerts != dl {
			holds = false
		}
	}
	res.Tables = append(res.Tables, table)
	res.Holds = holds
	return res, nil
}
