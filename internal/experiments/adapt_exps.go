package experiments

import (
	"fmt"
	"strings"

	"p2pm/internal/stats"
	"p2pm/internal/workload"
)

func init() {
	register("X6", "self-adaptive runtime — the monitor monitors itself: Lifeguard health scaling, load-driven interior re-chunking and P2PML-triggered control actions versus a static configuration under a diurnal+hotspot fault profile (extension)", runX6)
}

// runX6 measures the self-adaptation extension: the same deployment,
// the same seeded fault schedule (two slow-link phases for the worker
// hosting the hot interior, two real crash/recover cycles for the
// worker hosting the other one), run three ways — an undisturbed flat
// baseline (ground truth), a static configuration, and the adaptive
// runtime with all three control loops on.
//
// The adaptive run must kill nobody falsely while still confirming
// every real crash, split the hot interior at runtime (evening the
// post-split ingest), engage the quarantine and replication rules from
// a P2PML subscription over the detector's own telemetry, and publish
// records byte-identical to the flat baseline.
func runX6(s Scale) (*Result, error) {
	res := &Result{
		ID:    "X6",
		Claim: `"the P2P monitoring system should itself be monitored" (§6) — extension: the monitor's own telemetry is a monitored stream, and control loops subscribed to it retune the runtime live: Lifeguard-style health scaling keeps delayed-but-alive peers alive, a load controller re-chunks the hot aggregation interior mid-run, and trigger rules quarantine a flapping host and raise DHT replication — with output byte-identical to an undisturbed deployment`,
	}
	cfg := workload.DefaultAdapt()
	if s == Full {
		cfg.Events = 192
	}

	run := func(mode string) (*workload.AdaptReport, error) {
		c := cfg
		c.Mode = mode
		lab, err := workload.SetupAdapt(c)
		if err != nil {
			return nil, err
		}
		return lab.Run()
	}
	flat, err := run("flat")
	if err != nil {
		return nil, err
	}
	static, err := run("static")
	if err != nil {
		return nil, err
	}
	adaptive, err := run("adaptive")
	if err != nil {
		return nil, err
	}
	if len(flat.Records) == 0 {
		return nil, fmt.Errorf("X6: flat baseline produced no records")
	}

	holds := true
	detection := stats.NewTable("failure detection under the diurnal profile (same seed, same faults)",
		"mode", "false kills", "true kills", "repairs", "health peak", "replayed")
	for _, row := range []*workload.AdaptReport{static, adaptive} {
		detection.AddRow(row.Mode, row.FalseKills, row.TrueKills, row.Repairs, row.HealthPeak, row.Replayed)
	}
	res.Tables = append(res.Tables, detection)
	// The headline gate: the static detector false-kills delayed-but-
	// alive peers; the adaptive one kills nobody falsely and still
	// catches both real crashes.
	holds = holds && static.FalseKills >= 1 && static.TrueKills >= 1 &&
		adaptive.FalseKills == 0 && adaptive.TrueKills >= 1 &&
		adaptive.HealthPeak > 0 && static.HealthPeak == 0

	load := stats.NewTable("hot-interior load (final-quarter ingest per first-level interior)",
		"mode", "splits", "max", "mean", "max versus mean")
	for _, row := range []*workload.AdaptReport{static, adaptive} {
		load.AddRow(row.Mode, row.Splits, row.PostMax,
			fmt.Sprintf("%.1f", row.PostMean), fmt.Sprintf("%.2fx", row.PostRatio()))
	}
	res.Tables = append(res.Tables, load)
	holds = holds && static.Splits == 0 && adaptive.Splits >= 1 &&
		adaptive.PostRatio() <= static.PostRatio()

	actions := stats.NewTable("control actions from the sysmon subscription",
		"mode", "quarantine engages", "replication raises", "quarantined at teardown")
	for _, row := range []*workload.AdaptReport{static, adaptive} {
		actions.AddRow(row.Mode, row.Quarantines, row.ReplRaises, strings.Join(row.Quarantined, " "))
	}
	res.Tables = append(res.Tables, actions)
	quarFlap := false
	for _, q := range adaptive.Quarantined {
		quarFlap = quarFlap || q == adaptive.Flapper
	}
	holds = holds && adaptive.Quarantines >= 1 && adaptive.ReplRaises >= 1 && quarFlap &&
		static.Quarantines == 0 && static.ReplRaises == 0

	output := stats.NewTable("output integrity versus the undisturbed flat baseline",
		"mode", "records", "completeness", "byte-identical")
	for _, row := range []*workload.AdaptReport{flat, static, adaptive} {
		output.AddRow(row.Mode, len(row.Records),
			fmt.Sprintf("%.0f%%", row.Completeness(flat.Records)*100),
			row.Identical(flat.Records))
	}
	res.Tables = append(res.Tables, output)
	holds = holds && adaptive.Completeness(flat.Records) == 1 && adaptive.Identical(flat.Records)

	res.Notes = append(res.Notes,
		fmt.Sprintf("fault schedule: slow peer %s (hosting the hot interior) gets %v extra delay and %.0f%% loss on every link in two diurnal phases; flapper %s (hosting the other interior) crashes and recovers twice",
			adaptive.SlowPeer, cfg.SlowDelay, cfg.SlowDrop*100, adaptive.Flapper),
		"adaptive detection: each view keeps a Lifeguard health score raised by its own failed probes, by being suspected, and by having its own suspicions refuted; probe timeouts and suspicion windows scale by (1 + health), and the score relaxes only after a full clean probe rotation (docs/ADAPTIVE.md)",
		"re-chunking: the load controller watches per-interior ingest via System.AggLoad and splits the hot interior through the same exactly-once transaction the tests drive directly (System.SplitInterior)",
		"trigger rules: deaths and recoveries are ActiveXML repository updates on the manager, monitored by an ordinary P2PML subscription; an adapt.Loop with hysteresis quarantines the flapper from aggregation hosting and raises DHT replication during the death burst — actuation through the same Tuning surface operators use",
		fmt.Sprintf("all three modes publish against the same seeded drive: %d records in the flat ground truth", len(flat.Records)),
	)
	res.Holds = holds
	return res, nil
}
