package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every registered experiment at Quick scale
// and requires each paper claim's shape to hold. This is the repository's
// continuous reproduction check.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: the full reproduction sweep runs in the matrix job")
	}
	runners := All()
	if len(runners) != 17 { // F1-F7 + C1-C11 minus none... F7+C10 = 7+10
		t.Logf("registered: %d experiments", len(runners))
	}
	seen := map[string]bool{}
	for _, r := range runners {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			if seen[r.ID] {
				t.Fatalf("duplicate experiment id %s", r.ID)
			}
			seen[r.ID] = true
			res, err := r.Run(Quick)
			if err != nil {
				t.Fatal(err)
			}
			if res.ID != r.ID {
				t.Errorf("result id %s != %s", res.ID, r.ID)
			}
			if !res.Holds {
				t.Errorf("claim shape did not hold:\n%s", res)
			}
			out := res.String()
			if !strings.Contains(out, "paper:") || !strings.Contains(out, "claim shape:") {
				t.Errorf("rendering incomplete:\n%s", out)
			}
		})
	}
}

// TestRegistryComplete checks every DESIGN.md experiment id is present.
func TestRegistryComplete(t *testing.T) {
	for _, want := range []string{"F1", "F2", "F3", "F4", "F5", "F6", "F7",
		"C1", "C2", "C3", "C4", "C5", "C6", "C7", "C8", "C9", "C10", "C11"} {
		if _, ok := Lookup(want); !ok {
			t.Errorf("experiment %s not registered", want)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("f4"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if _, ok := Lookup("Z9"); ok {
		t.Error("unknown id found")
	}
}

func TestOrdering(t *testing.T) {
	runners := All()
	var ids []string
	for _, r := range runners {
		ids = append(ids, r.ID)
	}
	// F's first, then C's in numeric order.
	joined := strings.Join(ids, ",")
	if !strings.HasPrefix(joined, "F1,F2,F3,F4,F5,F6,F7,C1,C2,") {
		t.Errorf("order = %s", joined)
	}
	if !strings.Contains(joined, "C9,C10,C11") {
		t.Errorf("numeric order broken: %s", joined)
	}
}
