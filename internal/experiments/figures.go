package experiments

import (
	"fmt"
	"strings"

	"p2pm/internal/algebra"
	"p2pm/internal/core"
	"p2pm/internal/dht"
	"p2pm/internal/filter"
	"p2pm/internal/kadop"
	"p2pm/internal/peer"
	"p2pm/internal/reuse"
	"p2pm/internal/stats"
	"p2pm/internal/stream"
	"p2pm/internal/workload"
	"p2pm/internal/xpath"
)

func init() {
	register("F1", "Figure 1: the QoS subscription end to end", runF1)
	register("F2", "Figure 2: peer architecture", runF2)
	register("F3", "Figure 3: subscription processing chain", runF3)
	register("F4", "Figure 4: distributed plan placement", runF4)
	register("F5", "Figure 5: filter pipeline structure", runF5)
	register("F6", "Figure 6: AES hash-tree worked example", runF6)
	register("F7", "Figure 7: stream replication and reuse", runF7)
}

func runF1(s Scale) (*Result, error) {
	res := &Result{ID: "F1", Claim: "Figure 1: detect GetTemperature answers slower than 10s for clients of meteo.com"}
	sys := peer.MustSystem(peer.DefaultConfig())
	mgr := sys.MustAddPeer("p")
	cfg := workload.DefaultMeteo()
	if s == Quick {
		cfg.Calls = 8
	}
	if err := workload.SetupMeteo(sys, cfg); err != nil {
		return nil, err
	}
	task, err := mgr.Subscribe(workload.MeteoSubscription(cfg.Clients, cfg.Server))
	if err != nil {
		return nil, err
	}
	slow, err := workload.RunMeteo(sys, cfg)
	if err != nil {
		return nil, err
	}
	task.Stop()
	incidents := task.Results().Drain()
	table := stats.NewTable("incidents", "calls", "slow calls", "incidents detected")
	table.AddRow(cfg.Calls, slow, len(incidents))
	res.Tables = append(res.Tables, table)
	for i, it := range incidents {
		if i < 3 {
			res.Notes = append(res.Notes, it.Tree.String())
		}
	}
	res.Holds = len(incidents) == slow && slow > 0
	return res, nil
}

func runF2(Scale) (*Result, error) {
	res := &Result{ID: "F2", Claim: "Figure 2: a peer hosts a Subscription Manager plus alerters, stream processors and publishers"}
	sys := peer.MustSystem(peer.DefaultConfig())
	mgr := sys.MustAddPeer("p")
	cfg := workload.DefaultMeteo()
	if err := workload.SetupMeteo(sys, cfg); err != nil {
		return nil, err
	}
	task, err := mgr.Subscribe(workload.MeteoSubscription(cfg.Clients, cfg.Server))
	if err != nil {
		return nil, err
	}
	defer func() { task.Stop(); task.Results().Drain() }()

	byPeer := map[string][]string{}
	task.Plan.Walk(func(n *algebra.Node) {
		byPeer[n.Peer] = append(byPeer[n.Peer], n.Label())
	})
	table := stats.NewTable("module placement", "peer", "modules")
	for _, p := range []string{"p", "a.com", "b.com", "meteo.com"} {
		table.AddRow(p, strings.Join(byPeer[p], " | "))
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes, "manager components: "+strings.Join(mgr.Components(), ", "))
	res.Holds = len(byPeer["meteo.com"]) > 0 && len(byPeer["a.com"]) > 0
	return res, nil
}

func runF3(Scale) (*Result, error) {
	res := &Result{ID: "F3", Claim: "Figure 3: subscription → compiled plan → optimized plan → deployed task"}
	cfg := workload.DefaultMeteo()
	src := workload.MeteoSubscription(cfg.Clients, cfg.Server)
	ex, err := core.Explain(src, "p")
	if err != nil {
		return nil, err
	}
	table := stats.NewTable("processing chain", "stage", "operators", "rendering")
	table.AddRow("compiled (@any)", ex.NaivePlan.Count(), ex.NaivePlan.String())
	table.AddRow("optimized", ex.Optimized.Count(), ex.Optimized.String())
	res.Tables = append(res.Tables, table)
	concrete := true
	ex.Optimized.Walk(func(n *algebra.Node) {
		if n.Peer == algebra.AnyPeer {
			concrete = false
		}
	})
	res.Holds = concrete
	return res, nil
}

func runF4(Scale) (*Result, error) {
	res := &Result{ID: "F4", Claim: "Figure 4: σ at a.com/b.com, ∪ at b.com, ⋈ and Π at meteo.com, publisher at p, fragments linked by channels"}
	cfg := workload.DefaultMeteo()
	ex, err := core.Explain(workload.MeteoSubscription(cfg.Clients, cfg.Server), "p")
	if err != nil {
		return nil, err
	}
	got := ex.Optimized.String()
	want := "publisher@p(Π@meteo.com(⋈@meteo.com(∪@b.com(σ@a.com(out@a.com), σ@b.com(out@b.com)), in@meteo.com)))"
	table := stats.NewTable("plan rendering", "which", "plan")
	table.AddRow("produced", got)
	table.AddRow("figure 4", want)
	res.Tables = append(res.Tables, table)
	res.Holds = got == want
	res.Notes = append(res.Notes,
		"the paper additionally filters in-calls (σF'@meteo.com); our compiler keeps conditions exactly where the subscription states them — see EXPERIMENTS.md")
	return res, nil
}

func runF5(s Scale) (*Result, error) {
	res := &Result{ID: "F5", Claim: "Figure 5: preFilter → AESFilter → YFilterσ with offline adjustment"}
	f, gen := buildFilter(1000, 0.3)
	nDocs := 100
	if s == Quick {
		nDocs = 30
	}
	for _, raw := range gen.SerializedDocuments(nDocs) {
		if _, err := f.MatchSerialized(raw); err != nil {
			return nil, err
		}
	}
	st := f.Stats()
	table := stats.NewTable("pipeline stage activity over serialized documents",
		"docs", "preFilter evals", "AES probes", "yfilter runs", "yfilter skips", "bodies parsed", "bodies skipped")
	table.AddRow(st.Docs, st.PreFilterEvals, st.AESProbes, st.YFilterRuns, st.YFilterSkips, st.BodiesParsed, st.BodiesSkipped)
	res.Tables = append(res.Tables, table)
	// Offline adjustment: the dotted arrows — subscriptions change, the
	// structures rebuild, matching continues.
	f.Remove("sub-00000")
	if err := f.Add(filter.Subscription{ID: "late", Simple: []filter.Cond{{Attr: "a00", Op: xpath.OpEq, Value: "v00"}}}); err != nil {
		return nil, err
	}
	if _, err := f.MatchSerialized(`<envelope a00="v00"/>`); err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes, "subscription add/remove at runtime rebuilt the AES and YFilter (offline adjustment path)")
	res.Holds = st.YFilterSkips > 0 && st.BodiesSkipped > 0
	return res, nil
}

func runF6(Scale) (*Result, error) {
	res := &Result{ID: "F6", Claim: "Figure 6: hash-tree for Q1..Q6; document satisfying {C1,C3} matches Q5 and activates Q3,Q4"}
	a := filter.NewAES()
	const (
		c1, c2, c3, c4 = 1, 2, 3, 4
	)
	seqs := map[int][]int{1: {c1, c2}, 2: {c1, c2}, 3: {c3}, 4: {c1, c3}, 5: {c1}, 6: {c1, c2, c4}}
	for q := 1; q <= 6; q++ {
		if err := a.Insert(seqs[q], q); err != nil {
			return nil, err
		}
	}
	matched, probes := a.Match([]int{c1, c3})
	table := stats.NewTable("worked example", "satisfied", "matched/active subscriptions", "probes")
	table.AddRow("C1,C3", fmt.Sprint(matched), probes)
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes, "hash-tree structure:\n"+a.Dump(func(id int) string { return fmt.Sprintf("C%d", id) }))
	res.Holds = fmt.Sprint(matched) == "[3 4 5]"
	return res, nil
}

func runF7(Scale) (*Result, error) {
	res := &Result{ID: "F7", Claim: "Figure 7: filters and joins discovered over original streams; replicas substituted by the optimizer"}
	ring := dht.New()
	for i := 0; i < 16; i++ {
		if err := ring.Join(fmt.Sprintf("dht-%d", i)); err != nil {
			return nil, err
		}
	}
	db := kadop.New(ring)
	// The Figure 7 population: alerters on p1/p2, a filter of s1@p1, a
	// join of the filter with p2's out-calls, and a replica of s1@p1.
	defs := []*kadop.StreamDef{
		{Ref: ref("s1@p1"), Operator: "inCOM", Signature: "inCOM(p1)"},
		{Ref: ref("s2@p2"), Operator: "outCOM", Signature: "outCOM(p2)"},
		{Ref: ref("s3@p1"), Operator: "Filter", Signature: "Select{F}(inCOM(p1))", Operands: []stream.Ref{ref("s1@p1")}},
		{Ref: ref("s9@p3"), Operator: "Join", Signature: "Join{P}(Select{F}(inCOM(p1)),outCOM(p2))",
			Operands: []stream.Ref{ref("s3@p1"), ref("s2@p2")}},
	}
	for _, d := range defs {
		if err := db.PublishIndexed(d); err != nil {
			return nil, err
		}
	}
	if err := db.PublishReplica(ref("s1@p1"), ref("r1@p4")); err != nil {
		return nil, err
	}

	table := stats.NewTable("discovery queries (Section 5)", "query", "answer")
	q1, err := db.QueryXPath(`/Stream[@PeerId = $p1][Operator/inCOM]`, map[string]string{"p1": "p1"})
	if err != nil {
		return nil, err
	}
	table.AddRow("alerter on p1?", renderRefs(q1))
	q2, err := db.QueryXPath(`/Stream[Operator/Filter][Operands/Operand[@OPeerId=$p1][@OStreamId=$s1]]`,
		map[string]string{"p1": "p1", "s1": "s1"})
	if err != nil {
		return nil, err
	}
	table.AddRow("filter of s1@p1?", renderRefs(q2))
	q3, err := db.QueryXPath(`/Stream[Operator/Join][Operands/Operand[@OPeerId=$p1][@OStreamId=$s3]][Operands/Operand[@OPeerId=$p2][@OStreamId=$s2]]`,
		map[string]string{"p1": "p1", "s3": "s3", "p2": "p2", "s2": "s2"})
	if err != nil {
		return nil, err
	}
	table.AddRow("join of s3@p1 and s2@p2?", renderRefs(q3))
	replicas, _, err := db.Replicas("", ref("s1@p1"))
	if err != nil {
		return nil, err
	}
	table.AddRow("replicas of s1@p1", fmt.Sprint(replicas))
	res.Tables = append(res.Tables, table)

	// Replica selection: a consumer near p4 picks the replica.
	choose := reuse.PreferClose(
		func(a, b string) float64 {
			if b == "p4" {
				return 0.1
			}
			return 0.8
		},
		func(string) int { return 0 })
	picked := choose("consumer", ref("s1@p1"), replicas)
	res.Notes = append(res.Notes, fmt.Sprintf("optimizer picked provider %s for a consumer close to p4", picked))
	res.Holds = len(q1) == 1 && len(q2) == 1 && len(q3) == 1 && picked == ref("r1@p4")
	return res, nil
}

func ref(s string) stream.Ref {
	r, err := stream.ParseRef(s)
	if err != nil {
		panic(err)
	}
	return r
}

func renderRefs(defs []*kadop.StreamDef) string {
	parts := make([]string, len(defs))
	for i, d := range defs {
		parts[i] = d.Ref.String()
	}
	return strings.Join(parts, ", ")
}
