package adapt_test

import (
	"testing"
	"time"

	"p2pm/internal/adapt"
	"p2pm/internal/peer"
	"p2pm/internal/telemetry"
)

// TestMetricTriggerClassification pins the alert-shape contract between
// MetricsSysmon documents and MetricTrigger.
func TestMetricTriggerClassification(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := peer.DefaultConfig()
	cfg.Telemetry.Registry = reg
	sys := peer.MustSystem(cfg)
	mgr := sys.MustAddPeer("mgr")

	adapt.MetricsSysmon(sys, mgr, reg, time.Second)
	c := reg.Counter("wire_dropped_total", telemetry.L("peer", "n2"))
	c.Add(7)
	sys.Step(time.Second)

	doc, ok := mgr.Repo().Get("sysmetrics-000001")
	if !ok {
		t.Fatal("no sysmetrics document published after one Step")
	}
	found := false
	for _, e := range doc.ChildrenByLabel("metric") {
		if e.AttrOr("name", "") == "wire_dropped_total" {
			found = true
			if e.AttrOr("peer", "") != "n2" || e.AttrOr("value", "") != "7" {
				t.Errorf("metric element = %v", e)
			}
		}
	}
	if !found {
		t.Fatal("wire_dropped_total missing from the snapshot document")
	}

	// Deltas: the next period publishes only the growth.
	c.Add(3)
	sys.Step(time.Second)
	doc, ok = mgr.Repo().Get("sysmetrics-000002")
	if !ok {
		t.Fatal("no second snapshot")
	}
	for _, e := range doc.ChildrenByLabel("metric") {
		if e.AttrOr("name", "") == "wire_dropped_total" && e.AttrOr("value", "") != "3" {
			t.Errorf("second period delta = %s, want 3", e.AttrOr("value", ""))
		}
	}
}

// TestMetricLoopQuarantinesOnWireDrops is the acceptance path: the
// monitor's own telemetry registry, published as an ActiveXML stream by
// MetricsSysmon, watched by an ordinary P2PML subscription, drives an
// adapt.Loop rule that quarantines the peer behind sustained
// wire-decode drop growth — and releases it once the drops stop.
func TestMetricLoopQuarantinesOnWireDrops(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := peer.DefaultConfig()
	cfg.Telemetry.Registry = reg
	sys := peer.MustSystem(cfg)
	mgr := sys.MustAddPeer("mgr")
	sys.MustAddPeer("w1")
	sys.MustAddPeer("w2")

	adapt.MetricsSysmon(sys, mgr, reg, time.Second)
	task, err := mgr.Subscribe(adapt.SysmonQuery("mgr"))
	if err != nil {
		t.Fatalf("sysmon subscription: %v", err)
	}

	tun := sys.Tuning()
	loop := adapt.NewLoop()
	loop.MustAdd(adapt.Rule{
		Name:    "quarantine-dropper",
		Trigger: adapt.MetricTrigger("wire_dropped_total", "peer", 5),
		Arm:     3,
		Within:  10 * time.Second,
		Quiet:   5 * time.Second,
		Engage:  func(entity string, _ time.Duration) { tun.QuarantineAggHost(entity) },
		Release: func(entity string, _ time.Duration) { tun.LiftQuarantine(entity) },
	})
	adapt.Attach(sys, task, loop)

	// The operator pipeline runs asynchronously; wait for it to go
	// quiet before the next Step drains results into the loop.
	settle := func() {
		last, stable := uint64(0), 0
		for i := 0; i < 2000 && stable < 3; i++ {
			cur := task.ItemsProcessed()
			if cur == last {
				stable++
			} else {
				stable, last = 0, cur
			}
			time.Sleep(100 * time.Microsecond)
		}
	}

	// Sustained decode-drop growth attributed to w2 — the counter the
	// transport layer's wire mirror feeds when a peer ships garbage.
	dropped := reg.Counter("wire_dropped_total", telemetry.L("backend", "sim"), telemetry.L("peer", "w2"))
	for i := 0; i < 6; i++ {
		dropped.Add(6)
		sys.Step(time.Second)
		settle()
	}
	if q := tun.Quarantined(); len(q) != 1 || q[0] != "w2" {
		t.Fatalf("quarantined = %v, want [w2] after sustained drop growth (loop events: %v)", q, loop.Events())
	}

	// Drops stop; after Quiet the rule must release the quarantine.
	for i := 0; i < 8; i++ {
		sys.Step(time.Second)
		settle()
	}
	if q := tun.Quarantined(); len(q) != 0 {
		t.Fatalf("quarantined = %v, want none after quiet (loop events: %v)", q, loop.Events())
	}
}
