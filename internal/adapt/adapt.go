// Package adapt closes the monitoring loop: the monitor monitors
// itself. A Loop couples the result stream of an ordinary P2PML
// monitoring subscription — typically one watching the detector's own
// death/recover telemetry (see Sysmon) — to registered control actions
// on System.Tuning(), with hysteresis so the loop cannot flap.
//
// Each Rule classifies result items into (entity, firing) observations.
// An entity engages its action only after Arm firing observations land
// inside a sliding Within window of virtual time, and releases only
// after Quiet has elapsed with no further firing observation. Between
// those thresholds the rule holds its current state: a single transient
// event neither engages an action nor releases one that is already
// engaged, which is exactly the hysteresis a self-tuning system needs
// to avoid oscillating against its own control surface.
//
// The loop is deterministic under the simulated clock: observations
// carry virtual timestamps, Tick runs from the System.Step hook, and
// entities are visited in sorted order.
package adapt

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"p2pm/internal/stream"
)

// Rule couples a trigger classifying monitoring items to a control
// action, with time-window hysteresis.
type Rule struct {
	// Name identifies the rule in Engaged and Events.
	Name string
	// Trigger classifies one monitoring item: which entity it concerns
	// and whether it counts as a firing observation. Return entity ""
	// to ignore the item entirely.
	Trigger func(it stream.Item) (entity string, firing bool)
	// Arm is how many firing observations within Within engage the
	// action (minimum 1).
	Arm int
	// Within is the sliding window the Arm count is evaluated over;
	// zero means firing observations never expire.
	Within time.Duration
	// Quiet releases an engaged entity after this much virtual time
	// with no firing observation; zero means never auto-release.
	Quiet time.Duration
	// Engage runs when an entity crosses the Arm threshold.
	Engage func(entity string, at time.Duration)
	// Release runs when an engaged entity has been quiet long enough.
	Release func(entity string, at time.Duration)
}

// ActionEvent is one audit record of the loop acting.
type ActionEvent struct {
	Rule    string
	Entity  string
	At      time.Duration
	Engaged bool // true = Engage ran, false = Release ran
}

func (e ActionEvent) String() string {
	verb := "release"
	if e.Engaged {
		verb = "engage"
	}
	return fmt.Sprintf("%s %s(%s) at %s", verb, e.Rule, e.Entity, e.At)
}

type entState struct {
	fires    []time.Duration // firing timestamps still inside Within
	lastFire time.Duration
	engaged  bool
}

// Loop evaluates a set of rules over a stream of monitoring items.
type Loop struct {
	mu     sync.Mutex
	rules  []Rule
	states map[string]map[string]*entState // rule -> entity
	events []ActionEvent
}

// NewLoop builds an empty loop.
func NewLoop() *Loop {
	return &Loop{states: make(map[string]map[string]*entState)}
}

// Add registers a rule. Rules require a name, a trigger and an engage
// action; Arm below 1 is raised to 1.
func (l *Loop) Add(r Rule) error {
	if r.Name == "" {
		return fmt.Errorf("adapt: rule needs a name")
	}
	if r.Trigger == nil {
		return fmt.Errorf("adapt: rule %q needs a trigger", r.Name)
	}
	if r.Engage == nil {
		return fmt.Errorf("adapt: rule %q needs an engage action", r.Name)
	}
	if r.Arm < 1 {
		r.Arm = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, have := range l.rules {
		if have.Name == r.Name {
			return fmt.Errorf("adapt: rule %q registered twice", r.Name)
		}
	}
	l.rules = append(l.rules, r)
	l.states[r.Name] = make(map[string]*entState)
	return nil
}

// MustAdd is Add that panics on a bad rule.
func (l *Loop) MustAdd(r Rule) {
	if err := l.Add(r); err != nil {
		panic(err)
	}
}

// Observe feeds one monitoring item through every rule. Engage actions
// fire synchronously when an entity crosses its threshold.
func (l *Loop) Observe(it stream.Item) {
	if it.EOS() || it.Tree == nil {
		return
	}
	l.mu.Lock()
	var actions []func()
	for i := range l.rules {
		r := &l.rules[i]
		entity, firing := r.Trigger(it)
		if entity == "" || !firing {
			continue
		}
		st := l.states[r.Name][entity]
		if st == nil {
			st = &entState{}
			l.states[r.Name][entity] = st
		}
		st.lastFire = it.Time
		st.fires = append(st.fires, it.Time)
		st.fires = prune(st.fires, it.Time, r.Within)
		if !st.engaged && len(st.fires) >= r.Arm {
			st.engaged = true
			l.events = append(l.events, ActionEvent{Rule: r.Name, Entity: entity, At: it.Time, Engaged: true})
			rule, ent, at := *r, entity, it.Time
			actions = append(actions, func() { rule.Engage(ent, at) })
		}
	}
	l.mu.Unlock()
	// Actions run outside the lock: they typically call back into the
	// System (Tuning setters), which may re-enter the loop's accessors.
	for _, act := range actions {
		act()
	}
}

// Tick advances the hysteresis clock: engaged entities whose last firing
// observation is at least Quiet old are released. Call it from a
// System.Step hook with the virtual now.
func (l *Loop) Tick(now time.Duration) {
	l.mu.Lock()
	var actions []func()
	for i := range l.rules {
		r := &l.rules[i]
		if r.Quiet <= 0 || r.Release == nil {
			continue
		}
		for _, entity := range sortedEntities(l.states[r.Name]) {
			st := l.states[r.Name][entity]
			if st.engaged && now-st.lastFire >= r.Quiet {
				st.engaged = false
				st.fires = nil
				l.events = append(l.events, ActionEvent{Rule: r.Name, Entity: entity, At: now, Engaged: false})
				rule, ent := *r, entity
				actions = append(actions, func() { rule.Release(ent, now) })
			}
		}
	}
	l.mu.Unlock()
	for _, act := range actions {
		act()
	}
}

// Engaged lists the entities a rule currently holds engaged, sorted.
func (l *Loop) Engaged(rule string) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []string
	for entity, st := range l.states[rule] {
		if st.engaged {
			out = append(out, entity)
		}
	}
	sort.Strings(out)
	return out
}

// Events returns the audit log of every engage/release taken so far.
func (l *Loop) Events() []ActionEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]ActionEvent(nil), l.events...)
}

// prune drops firing timestamps that have slid out of the window.
func prune(fires []time.Duration, now, within time.Duration) []time.Duration {
	if within <= 0 {
		return fires
	}
	keep := fires[:0]
	for _, f := range fires {
		if now-f < within {
			keep = append(keep, f)
		}
	}
	return keep
}

func sortedEntities(m map[string]*entState) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
