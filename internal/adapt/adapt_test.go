package adapt

import (
	"testing"
	"time"

	"p2pm/internal/stream"
	"p2pm/internal/xmltree"
)

func alertItem(kind, peer string, at time.Duration) stream.Item {
	ev := xmltree.Elem(kind)
	ev.SetAttr("peer", peer)
	ev.SetAttr("at", at.String())
	n := xmltree.Elem("alert")
	n.SetAttr("type", "axml")
	n.SetAttr("op", "create")
	n.Append(ev)
	return stream.Item{Tree: n, Time: at}
}

func TestLoopArmWithinWindow(t *testing.T) {
	var engaged, released []string
	l := NewLoop()
	l.MustAdd(Rule{
		Name:    "r",
		Trigger: SysmonTrigger("death"),
		Arm:     3,
		Within:  10 * time.Second,
		Quiet:   20 * time.Second,
		Engage:  func(e string, _ time.Duration) { engaged = append(engaged, e) },
		Release: func(e string, _ time.Duration) { released = append(released, e) },
	})

	// Two deaths inside the window: below threshold.
	l.Observe(alertItem("death", "p1", 1*time.Second))
	l.Observe(alertItem("death", "p1", 2*time.Second))
	if got := l.Engaged("r"); len(got) != 0 {
		t.Fatalf("engaged below threshold: %v", got)
	}
	// A third death, but only after the first two slid out of Within.
	l.Observe(alertItem("death", "p1", 15*time.Second))
	if got := l.Engaged("r"); len(got) != 0 {
		t.Fatalf("stale observations counted toward Arm: %v", got)
	}
	// Three deaths within one window engage.
	l.Observe(alertItem("death", "p1", 16*time.Second))
	l.Observe(alertItem("death", "p1", 17*time.Second))
	if got := l.Engaged("r"); len(got) != 1 || got[0] != "p1" {
		t.Fatalf("want p1 engaged, got %v", got)
	}
	if len(engaged) != 1 || engaged[0] != "p1" {
		t.Fatalf("engage action ran %v times", engaged)
	}
	// Still firing: Tick before Quiet elapses must not release.
	l.Tick(30 * time.Second)
	if got := l.Engaged("r"); len(got) != 1 {
		t.Fatalf("released before Quiet: %v", got)
	}
	// Quiet elapsed: released exactly once.
	l.Tick(37 * time.Second)
	if got := l.Engaged("r"); len(got) != 0 {
		t.Fatalf("still engaged after Quiet: %v", got)
	}
	if len(released) != 1 || released[0] != "p1" {
		t.Fatalf("release action ran %v times", released)
	}
	// The audit log records both transitions in order.
	ev := l.Events()
	if len(ev) != 2 || !ev[0].Engaged || ev[1].Engaged {
		t.Fatalf("audit log wrong: %v", ev)
	}
}

func TestLoopEntitiesIndependent(t *testing.T) {
	l := NewLoop()
	l.MustAdd(Rule{
		Name:    "r",
		Trigger: SysmonTrigger("death"),
		Arm:     2,
		Within:  10 * time.Second,
		Engage:  func(string, time.Duration) {},
	})
	l.Observe(alertItem("death", "a", 1*time.Second))
	l.Observe(alertItem("death", "b", 2*time.Second))
	if got := l.Engaged("r"); len(got) != 0 {
		t.Fatalf("deaths of distinct peers pooled: %v", got)
	}
	l.Observe(alertItem("death", "a", 3*time.Second))
	if got := l.Engaged("r"); len(got) != 1 || got[0] != "a" {
		t.Fatalf("want only a engaged, got %v", got)
	}
}

func TestLoopReengageAfterRelease(t *testing.T) {
	count := 0
	l := NewLoop()
	l.MustAdd(Rule{
		Name:    "r",
		Trigger: SysmonTrigger("death"),
		Arm:     2,
		Within:  10 * time.Second,
		Quiet:   5 * time.Second,
		Engage:  func(string, time.Duration) { count++ },
		Release: func(string, time.Duration) {},
	})
	l.Observe(alertItem("death", "p", 1*time.Second))
	l.Observe(alertItem("death", "p", 2*time.Second))
	l.Tick(8 * time.Second) // released
	// One death after release must not re-engage (counter was reset).
	l.Observe(alertItem("death", "p", 9*time.Second))
	if got := l.Engaged("r"); len(got) != 0 {
		t.Fatalf("re-engaged on a single observation: %v", got)
	}
	l.Observe(alertItem("death", "p", 10*time.Second))
	if got := l.Engaged("r"); len(got) != 1 {
		t.Fatalf("second burst did not re-engage: %v", got)
	}
	if count != 2 {
		t.Fatalf("engage ran %d times, want 2", count)
	}
}

func TestSysmonTriggerClassification(t *testing.T) {
	trig := SysmonTrigger("death")
	if e, f := trig(alertItem("death", "p", time.Second)); e != "p" || !f {
		t.Fatalf("death: got (%q,%v)", e, f)
	}
	// A recover names the entity but does not fire.
	if e, f := trig(alertItem("recover", "p", time.Second)); e != "p" || f {
		t.Fatalf("recover: got (%q,%v)", e, f)
	}
	// Non-alert items are ignored.
	if e, _ := trig(stream.Item{Tree: xmltree.Elem("row"), Time: time.Second}); e != "" {
		t.Fatalf("non-alert classified as %q", e)
	}
}

func TestLoopRejectsBadRules(t *testing.T) {
	l := NewLoop()
	if err := l.Add(Rule{Trigger: SysmonTrigger(), Engage: func(string, time.Duration) {}}); err == nil {
		t.Fatal("nameless rule accepted")
	}
	if err := l.Add(Rule{Name: "x", Engage: func(string, time.Duration) {}}); err == nil {
		t.Fatal("triggerless rule accepted")
	}
	if err := l.Add(Rule{Name: "x", Trigger: SysmonTrigger()}); err == nil {
		t.Fatal("actionless rule accepted")
	}
	l.MustAdd(Rule{Name: "x", Trigger: SysmonTrigger(), Engage: func(string, time.Duration) {}})
	if err := l.Add(Rule{Name: "x", Trigger: SysmonTrigger(), Engage: func(string, time.Duration) {}}); err == nil {
		t.Fatal("duplicate rule name accepted")
	}
}
