package adapt

import (
	"fmt"
	"strconv"
	"time"

	"p2pm/internal/peer"
	"p2pm/internal/stream"
	"p2pm/internal/telemetry"
	"p2pm/internal/xmltree"
)

// MetricsSysmon publishes periodic telemetry-registry snapshots into
// the host peer's ActiveXML repository, the same way Sysmon publishes
// detector events: each period a fresh document lands, so the
// repository alerter emits one create alert per snapshot and any P2PML
// subscription (SysmonQuery on the host) receives the monitor's own
// metrics as an ordinary stream. Counters and histograms are published
// as deltas against the previous snapshot — a rule watches rates, not
// lifetime totals — while gauges pass through as levels:
//
//	<alert type="axml" doc="sysmetrics-000002" op="create">
//	  <sysmetrics seq="2" at="4s">
//	    <metric name="wire_dropped_total" peer="n2" value="17"/>
//	    ...
//	  </sysmetrics>
//	</alert>
//
// every is the publication period in virtual time (snapshots ride the
// System.Step hook, so the cadence is deterministic); histograms
// publish their delta observation count as value.
func MetricsSysmon(sys *peer.System, host *peer.Peer, reg *telemetry.Registry, every time.Duration) {
	repo := host.Repo()
	seq := 0
	var prev telemetry.Snapshot
	var last time.Duration
	sys.OnStep(func(now time.Duration) {
		if seq > 0 && now-last < every {
			return
		}
		last = now
		cur := reg.Snapshot()
		delta := cur.Delta(prev)
		prev = cur
		seq++
		doc := xmltree.Elem("sysmetrics")
		doc.SetAttr("seq", strconv.Itoa(seq))
		doc.SetAttr("at", now.String())
		for _, m := range delta.Metrics {
			e := xmltree.Elem("metric")
			e.SetAttr("name", m.Name)
			for _, l := range m.Labels {
				e.SetAttr(l.Key, l.Value)
			}
			v := m.Value
			if m.Kind == telemetry.KindHistogram {
				v = int64(m.Count)
			}
			e.SetAttr("value", strconv.FormatInt(v, 10))
			doc.Append(e)
		}
		repo.Put(fmt.Sprintf("sysmetrics-%06d", seq), doc)
	})
}

// MetricTrigger classifies MetricsSysmon alert items for a Rule: it
// scans a snapshot alert for series of the named metric and fires on
// the one with the largest value when that value reaches min — i.e.
// "this metric grew by at least min during the last period". The
// entity is the firing series' labelKey label (so a per-peer counter
// quarantines the right peer); with labelKey "" every series maps to
// the single entity "system". Items that are not metric snapshots map
// to entity "".
func MetricTrigger(metric, labelKey string, min int64) func(it stream.Item) (string, bool) {
	return func(it stream.Item) (string, bool) {
		if it.Tree == nil || it.Tree.Label != "alert" {
			return "", false
		}
		doc := it.Tree.Child("sysmetrics")
		if doc == nil {
			return "", false
		}
		entity, best, found := "", int64(0), false
		for _, e := range doc.ChildrenByLabel("metric") {
			if e.AttrOr("name", "") != metric {
				continue
			}
			v, err := strconv.ParseInt(e.AttrOr("value", ""), 10, 64)
			if err != nil {
				continue
			}
			if !found || v > best {
				found, best = true, v
				if labelKey == "" {
					entity = "system"
				} else {
					entity = e.AttrOr(labelKey, "")
				}
			}
		}
		if !found || entity == "" {
			return "", false
		}
		return entity, best >= min
	}
}
