// Sysmon turns the failure detector's own telemetry into a monitorable
// stream, so the control loop's input is an ordinary P2PML subscription
// rather than a private side channel: deaths and recoveries become
// ActiveXML repository updates on a designated peer, and any peer can
// subscribe to them with axmlCOM like any other monitored source.
package adapt

import (
	"fmt"
	"time"

	"p2pm/internal/peer"
	"p2pm/internal/stream"
	"p2pm/internal/xmltree"
)

// Sysmon publishes a failure detector's death/recover events into the
// host peer's ActiveXML repository. Each event is stored under a fresh
// document name, so the repository alerter emits one create alert per
// event:
//
//	<alert type="axml" doc="sysmon-000001-p3" op="create">
//	  <death peer="p3" at="12.5s"/>
//	</alert>
//
// Subscribe with `for $e in axmlCOM(<p>HOST</p>) return $e by ...` to
// receive them; SysmonQuery builds that text.
func Sysmon(det peer.FailureDetector, host *peer.Peer) {
	repo := host.Repo()
	seq := 0
	put := func(kind, p string, at time.Duration) {
		seq++
		n := xmltree.Elem(kind)
		n.SetAttr("peer", p)
		n.SetAttr("at", at.String())
		repo.Put(fmt.Sprintf("sysmon-%06d-%s", seq, p), n)
	}
	det.OnDeath(func(p string, at time.Duration) { put("death", p, at) })
	det.OnRecover(func(p string, at time.Duration) { put("recover", p, at) })
}

// SysmonQuery is the P2PML subscription text monitoring a Sysmon host's
// telemetry stream.
func SysmonQuery(host string) string {
	return fmt.Sprintf(`for $e in axmlCOM(<p>%s</p>) return $e by channel sysmon`, host)
}

// SysmonTrigger classifies Sysmon alert items for a Rule: the entity is
// the peer the event concerns, and the event kinds listed in firingOn
// count as firing observations. Items that are not Sysmon alerts map to
// entity "".
func SysmonTrigger(firingOn ...string) func(it stream.Item) (string, bool) {
	fire := make(map[string]bool, len(firingOn))
	for _, k := range firingOn {
		fire[k] = true
	}
	return func(it stream.Item) (string, bool) {
		if it.Tree == nil || it.Tree.Label != "alert" {
			return "", false
		}
		for _, kind := range []string{"death", "recover"} {
			if ev := it.Tree.Child(kind); ev != nil {
				return ev.AttrOr("peer", ""), fire[kind]
			}
		}
		return "", false
	}
}

// QuarantineFlapper builds a Rule that removes a flapping peer from
// aggregation hosting — arm deaths within the window quarantine it, and
// quiet lifts the quarantine. The rebalance that follows each change is
// exactly-once under the replay layer, so the loop may act mid-stream.
func QuarantineFlapper(tun peer.Tuning, arm int, within, quiet time.Duration) Rule {
	return Rule{
		Name:    "quarantine-flapper",
		Trigger: SysmonTrigger("death"),
		Arm:     arm,
		Within:  within,
		Quiet:   quiet,
		Engage:  func(entity string, _ time.Duration) { tun.QuarantineAggHost(entity) },
		Release: func(entity string, _ time.Duration) { tun.LiftQuarantine(entity) },
	}
}

// RaiseReplication builds a Rule that raises the DHT replication degree
// while the system-wide death rate is high, restoring the base degree
// after calm. All deaths map to the single entity "dht".
func RaiseReplication(tun peer.Tuning, base, raised, arm int, within, quiet time.Duration) Rule {
	trig := SysmonTrigger("death")
	return Rule{
		Name: "raise-replication",
		Trigger: func(it stream.Item) (string, bool) {
			if entity, firing := trig(it); entity != "" && firing {
				return "dht", true
			}
			return "", false
		},
		Arm:     arm,
		Within:  within,
		Quiet:   quiet,
		Engage:  func(_ string, _ time.Duration) { tun.SetDHTReplication(raised) },
		Release: func(_ string, _ time.Duration) { tun.SetDHTReplication(base) },
	}
}

// Attach drives a loop from a deployed monitoring task: a System.Step
// hook drains the task's results into Observe and then Ticks the
// hysteresis clock. The loop owns the task's result queue from here on.
func Attach(sys *peer.System, task *peer.Task, l *Loop) {
	sys.OnStep(func(now time.Duration) {
		for {
			it, ok := task.Results().TryPop()
			if !ok {
				break
			}
			l.Observe(it)
		}
		l.Tick(now)
	})
}
