package workload

import (
	"testing"
	"time"
)

// TestChurnReplayIsLossless is the tentpole acceptance at workload
// level: with upstream replay buffers and operator checkpointing on, the
// same churn schedule that loses the outage windows in the lossy
// configuration delivers every driven event — completeness 1.0, via
// genuine retransmissions.
func TestChurnReplayIsLossless(t *testing.T) {
	cfg := DefaultChurn()
	cfg.Events = 60
	cfg.CrashEvery = 12
	cfg.Replay = true
	lab, err := SetupChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := lab.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashes == 0 || rep.Deaths != rep.Crashes {
		t.Fatalf("crashes=%d deaths=%d: the schedule must actually churn", rep.Crashes, rep.Deaths)
	}
	if rep.Repairs < rep.Crashes {
		t.Errorf("repairs=%d < crashes=%d", rep.Repairs, rep.Crashes)
	}
	if rep.Completeness() != 1 {
		t.Errorf("completeness = %.3f (%d/%d), want exactly 1.0 with replay on",
			rep.Completeness(), rep.Received, rep.Driven)
	}
	if rep.Replayed == 0 {
		t.Error("no items were replayed: losslessness came for free, not from the replay layer")
	}
}

// TestChurnReplayBoundedBufferStillHelps: a retention buffer smaller
// than the full history still recovers outage losses as long as it
// covers the detection window.
func TestChurnReplayBoundedBufferStillHelps(t *testing.T) {
	cfg := DefaultChurn()
	cfg.Events = 60
	cfg.CrashEvery = 15
	cfg.Replay = true
	cfg.ReplayBuffer = 16 // ≫ suspicion window (2s ≈ 2 events), ≪ run length
	lab, err := SetupChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := lab.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashes == 0 {
		t.Fatal("no crashes")
	}
	if rep.Completeness() != 1 {
		t.Errorf("completeness = %.3f with a 16-item buffer, want 1.0 (buffer must only cover the outage window)",
			rep.Completeness())
	}
}

// TestChurnDeterministicUnderSeed: two runs of the same seeded scenario
// report identical completeness and failover metrics — virtual-clock
// detection plus the replay layer make the outcome independent of
// wall-clock goroutine scheduling. Run with -race.
func TestChurnDeterministicUnderSeed(t *testing.T) {
	run := func() *ChurnReport {
		t.Helper()
		cfg := DefaultChurn()
		cfg.Seed = 7
		cfg.Events = 50
		cfg.CrashEvery = 10
		cfg.MTTR = 6 * time.Second
		cfg.Replay = true
		lab, err := SetupChurn(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := lab.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Completeness() != b.Completeness() || a.Received != b.Received || a.Driven != b.Driven {
		t.Errorf("completeness diverged: %d/%d vs %d/%d", a.Received, a.Driven, b.Received, b.Driven)
	}
	if a.Crashes != b.Crashes || a.Deaths != b.Deaths || a.Repairs != b.Repairs {
		t.Errorf("failover counts diverged: crashes %d/%d deaths %d/%d repairs %d/%d",
			a.Crashes, b.Crashes, a.Deaths, b.Deaths, a.Repairs, b.Repairs)
	}
	if a.DetectionLatency.N() != b.DetectionLatency.N() || a.DetectionLatency.Mean() != b.DetectionLatency.Mean() {
		t.Errorf("detection latency diverged: n=%d mean=%v vs n=%d mean=%v",
			a.DetectionLatency.N(), a.DetectionLatency.Mean(),
			b.DetectionLatency.N(), b.DetectionLatency.Mean())
	}
	if a.Completeness() != 1 {
		t.Errorf("deterministic runs should also be lossless: completeness = %.3f", a.Completeness())
	}
}
