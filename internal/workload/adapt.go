// AdaptLab: the self-adaptive runtime under a diurnal + hotspot
// profile. One windowed group-by-count aggregation runs over skewed
// sources while the substrate degrades on a schedule: a worker hosting
// the hot interior turns slow-but-alive twice (the diurnal phases —
// inflated latency and message loss on its links, every message still
// eventually arriving), and a second worker flaps (true crash, recover,
// crash again). The static run takes the classic damage: the gossip
// detector false-kills the slow peer and failover churns state for
// nothing, the hot interior stays hot, the flapper re-hosts state
// between its crashes. The adaptive run turns on the PR 9 control
// loops — Lifeguard health scaling in the detector, the load-driven
// re-chunking controller, and an adapt.Loop fed by a P2PML subscription
// over the detector's own telemetry that quarantines the flapper and
// raises DHT replication under death bursts — and must kill nobody
// falsely, split the hot interior at runtime, and still publish records
// byte-identical to the undisturbed flat deployment.
package workload

import (
	"fmt"
	"sort"
	"time"

	"p2pm/internal/adapt"
	"p2pm/internal/algebra"
	"p2pm/internal/peer"
	"p2pm/internal/xmltree"
)

// AdaptConfig parameterizes the self-adaptation scenario.
type AdaptConfig struct {
	// Mode selects the deployment: "flat" (undisturbed ground truth —
	// flat Group, no faults, no detector), "static" (tree + faults,
	// controllers off) or "adaptive" (tree + faults, controllers on).
	Mode    string
	Seed    int64
	Sources int // monitored sources s0.., leaves of the tree
	Workers int // merge-host pool w0..
	Events  int
	Step    time.Duration
	Window  time.Duration
	Degree  int // aggregation-tree fan-in bound

	// HotSpan: events i with i%HotSpan != HotSpan-1 hit the hot half of
	// the sources (the first Degree leaves — one interior's subtree).
	HotSpan int

	// SlowDelay/SlowDrop degrade every link of the slow worker during
	// the two diurnal phases; the worker stays alive throughout.
	SlowDelay time.Duration
	SlowDrop  float64

	// Detector aggressiveness (the static trap). HealthMax caps the
	// adaptive multiplier so a true crash is still confirmed within the
	// flapper's downtime even at peak health.
	ProbeTimeout time.Duration
	Suspicion    time.Duration
	HealthMax    int

	// Controller knobs (adaptive mode).
	SplitRatio        float64
	SplitObservations int
}

// DefaultAdapt returns the scenario the X6 experiment runs.
func DefaultAdapt() AdaptConfig {
	return AdaptConfig{
		Mode:              "adaptive",
		Seed:              9,
		Sources:           8,
		Workers:           3,
		Events:            96,
		Step:              time.Second,
		Window:            16 * time.Second,
		Degree:            4,
		HotSpan:           6,
		SlowDelay:         400 * time.Millisecond,
		SlowDrop:          0.3,
		ProbeTimeout:      500 * time.Millisecond,
		Suspicion:         2 * time.Second,
		HealthMax:         3,
		SplitRatio:        1.5,
		SplitObservations: 3,
	}
}

// AdaptReport is the outcome of one AdaptLab run.
type AdaptReport struct {
	Mode    string
	Driven  int
	Records []string

	FalseKills int      // confirmed deaths of peers that were alive
	TrueKills  int      // confirmed deaths of actually crashed peers
	Kills      []string // every confirmed death: peer, virtual time, crashed?
	Repairs    int // failover repair actions
	Replayed   uint64

	Splits      int
	SplitEvents []peer.SplitEvent
	// PostMax/PostMean: per-first-level-interior ingest over the final
	// quarter of the run (after any splits settled), max and mean.
	PostMax  uint64
	PostMean float64

	HealthPeak  int      // highest Lifeguard health score sampled
	Quarantines int      // adapt.Loop engage events on the flapper rule
	ReplRaises  int      // adapt.Loop engage events on the dht rule
	Quarantined []string // quarantine set at teardown

	SlowPeer string
	Flapper  string
}

// PostRatio is the post-split load skew (max over mean; 0 when no
// interior ingested anything in the final quarter).
func (r *AdaptReport) PostRatio() float64 {
	if r.PostMean == 0 {
		return 0
	}
	return float64(r.PostMax) / r.PostMean
}

// Completeness compares records against a baseline run's: the matched
// fraction of the baseline multiset.
func (r *AdaptReport) Completeness(baseline []string) float64 {
	if len(baseline) == 0 {
		return 0
	}
	have := map[string]int{}
	for _, rec := range r.Records {
		have[rec]++
	}
	matched := 0
	for _, rec := range baseline {
		if have[rec] > 0 {
			have[rec]--
			matched++
		}
	}
	return float64(matched) / float64(len(baseline))
}

// Identical reports byte-identity with a baseline record set (both
// sides sorted).
func (r *AdaptReport) Identical(baseline []string) bool {
	if len(r.Records) != len(baseline) {
		return false
	}
	for i := range baseline {
		if r.Records[i] != baseline[i] {
			return false
		}
	}
	return true
}

// AdaptLab is one assembled run of the scenario.
type AdaptLab struct {
	Sys  *peer.System
	Task *peer.Task
	cfg  AdaptConfig

	det     *peer.GossipDetector
	sup     *peer.Supervisor
	loop    *adapt.Loop
	rep     *AdaptReport
	crashed map[string]bool
}

// SetupAdapt builds the deployment for one mode.
func SetupAdapt(cfg AdaptConfig) (*AdaptLab, error) {
	switch cfg.Mode {
	case "flat", "static", "adaptive":
	default:
		return nil, fmt.Errorf("workload: unknown adapt mode %q (want flat, static or adaptive)", cfg.Mode)
	}
	if cfg.Sources < cfg.Degree || cfg.Degree < 4 {
		return nil, fmt.Errorf("workload: adapt needs Degree >= 4 and Sources >= Degree (got %d/%d)", cfg.Sources, cfg.Degree)
	}
	if cfg.Workers < 2 {
		return nil, fmt.Errorf("workload: adapt needs >= 2 workers for a flapper distinct from the slow peer")
	}

	pc := peer.DefaultConfig()
	pc.Seed = cfg.Seed
	if cfg.Mode != "flat" {
		pc.Agg.Degree = cfg.Degree
		pc.Replay.Buffer = 4096
		pc.Replay.CheckpointInterval = 2 * cfg.Step
		pc.Gossip = peer.GossipConfig{
			ProbeInterval: cfg.Step,
			ProbeTimeout:  cfg.ProbeTimeout,
			Suspicion:     cfg.Suspicion,
			Adaptive:      cfg.Mode == "adaptive",
			HealthMax:     cfg.HealthMax,
		}
	}
	if cfg.Mode == "adaptive" {
		pc.Agg.SplitRatio = cfg.SplitRatio
		pc.Agg.SplitObservations = cfg.SplitObservations
		pc.Agg.SplitMinFanIn = 4
		pc.Agg.SplitCooldown = 10 * cfg.Step
	}
	sys, err := peer.NewSystem(pc)
	if err != nil {
		return nil, err
	}
	mgr, err := sys.AddPeer("mgr")
	if err != nil {
		return nil, err
	}
	if _, err := sys.AddPeer("client"); err != nil {
		return nil, err
	}
	var branches []*algebra.Node
	for i := 0; i < cfg.Sources; i++ {
		name := fmt.Sprintf("s%d", i)
		sp, err := sys.AddPeer(name)
		if err != nil {
			return nil, err
		}
		sp.Endpoint().Register("Q", func(*xmltree.Node) (*xmltree.Node, error) {
			return xmltree.Elem("ok"), nil
		}, nil)
		branches = append(branches, algebra.NewAlerter("inCOM", "ws-in", name, "e", nil))
	}
	for i := 0; i < cfg.Workers; i++ {
		if _, err := sys.AddPeer(fmt.Sprintf("w%d", i)); err != nil {
			return nil, err
		}
	}
	sys.SetAggHosts(func(name string) bool { return name[0] == 'w' })
	union := &algebra.Node{Op: algebra.OpUnion, Peer: "w0", Inputs: branches, Schema: []string{"e"}}
	group := &algebra.Node{
		Op: algebra.OpGroup, Peer: "w0", Inputs: []*algebra.Node{union},
		Schema: []string{"e"}, Group: &algebra.GroupSpec{KeyAttr: "callee", Window: fmt.Sprint(cfg.Window)},
	}
	plan := &algebra.Node{
		Op: algebra.OpPublish, Peer: "mgr", Inputs: []*algebra.Node{group},
		Schema: []string{"e"}, Publish: &algebra.PublishSpec{ChannelID: "adapt"},
	}
	task, err := mgr.DeployPlan(plan)
	if err != nil {
		return nil, err
	}
	lab := &AdaptLab{
		Sys: sys, Task: task, cfg: cfg,
		rep:     &AdaptReport{Mode: cfg.Mode},
		crashed: map[string]bool{},
	}

	if cfg.Mode == "flat" {
		return lab, nil
	}

	// The slow peer hosts the hot interior (skewed drive lands there);
	// the flapper is a different worker.
	hot := lab.firstLevelInteriors()
	if len(hot) < 2 {
		return nil, fmt.Errorf("workload: tree has %d first-level interiors, need >= 2", len(hot))
	}
	lab.rep.SlowPeer = hot[0].Peer
	// Prefer a flapper that hosts real state (the other first-level
	// interior) so its crashes exercise failover, not just detection.
	if p := hot[1].Peer; p != lab.rep.SlowPeer {
		lab.rep.Flapper = p
	} else {
		for i := cfg.Workers - 1; i >= 0; i-- {
			if w := fmt.Sprintf("w%d", i); w != lab.rep.SlowPeer {
				lab.rep.Flapper = w
				break
			}
		}
	}

	lab.sup = sys.StartGossipSupervisor(peer.GossipOptions{Seed: cfg.Seed})
	lab.det, _ = lab.sup.Detector().(*peer.GossipDetector)
	lab.sup.Detector().OnDeath(func(p string, at time.Duration) {
		if lab.crashed[p] {
			lab.rep.TrueKills++
		} else {
			lab.rep.FalseKills++
		}
		lab.rep.Kills = append(lab.rep.Kills, fmt.Sprintf("%s@%s crashed=%v", p, at, lab.crashed[p]))
	})

	if cfg.Mode == "adaptive" {
		// The loop's input is an ordinary P2PML subscription over the
		// detector's own telemetry — the monitor monitoring itself.
		adapt.Sysmon(lab.sup.Detector(), mgr)
		sysTask, err := mgr.Subscribe(adapt.SysmonQuery("mgr"))
		if err != nil {
			return nil, fmt.Errorf("workload: sysmon subscription: %w", err)
		}
		tun := sys.Tuning()
		// Hysteresis windows scale with the schedule: the flapper's two
		// crashes are Events/4 periods apart, so half the run must count
		// as one burst, and quiet must outlast the run (quarantine holds
		// to teardown).
		within := time.Duration(cfg.Events) * cfg.Step / 2
		quiet := 2 * time.Duration(cfg.Events) * cfg.Step
		lab.loop = adapt.NewLoop()
		lab.loop.MustAdd(adapt.QuarantineFlapper(tun, 2, within, quiet))
		lab.loop.MustAdd(adapt.RaiseReplication(tun, pc.DHT.Replication, pc.DHT.Replication+1, 2, within, quiet))
		adapt.Attach(sys, sysTask, lab.loop)
	}
	return lab, nil
}

// firstLevelInteriors lists the key-routed interiors whose inputs are
// all PartialAgg leaves — the nodes whose gauges move mid-run.
func (l *AdaptLab) firstLevelInteriors() []*algebra.Node {
	var out []*algebra.Node
	l.Task.Plan.Walk(func(n *algebra.Node) {
		if n.Op != algebra.OpMergeAgg || n.AggKey == "" {
			return
		}
		for _, in := range n.Inputs {
			if in.Op != algebra.OpPartialAgg {
				return
			}
		}
		out = append(out, n)
	})
	return out
}

// target picks event i's source under the hotspot profile.
func (l *AdaptLab) target(i int) string {
	half := l.cfg.Degree
	if l.cfg.HotSpan > 1 && i%l.cfg.HotSpan == l.cfg.HotSpan-1 {
		return fmt.Sprintf("s%d", half+i%(l.cfg.Sources-half))
	}
	return fmt.Sprintf("s%d", i%half)
}

// setSlow degrades or restores every link of the slow peer.
func (l *AdaptLab) setSlow(on bool) {
	delay, drop := time.Duration(0), 0.0
	if on {
		delay, drop = l.cfg.SlowDelay, l.cfg.SlowDrop
	}
	for _, other := range l.Sys.Net.Nodes() {
		if other == l.rep.SlowPeer {
			continue
		}
		l.Sys.Net.SetExtraDelay(other, l.rep.SlowPeer, delay)
		l.Sys.Net.SetExtraDelay(l.rep.SlowPeer, other, delay)
		l.Sys.Net.SetDrop(other, l.rep.SlowPeer, drop)
		l.Sys.Net.SetDrop(l.rep.SlowPeer, other, drop)
	}
}

func (l *AdaptLab) settle() {
	last, stable := uint64(0), 0
	for i := 0; i < 2000 && stable < 3; i++ {
		cur := l.Task.ItemsProcessed()
		if cur == last {
			stable++
		} else {
			stable, last = 0, cur
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// Run drives the schedule and returns the report.
func (l *AdaptLab) Run() (*AdaptReport, error) {
	cfg, sys, rep := l.cfg, l.Sys, l.rep
	client := sys.Peer("client")
	faults := cfg.Mode != "flat"

	// The diurnal phases: two slow windows for the hot-interior host.
	phase := cfg.Events / 6
	slowSpans := [][2]int{{phase, 3 * phase}, {4 * phase, 5 * phase}}
	// The flapper's two crash/recover cycles.
	flapDown := map[int]bool{}
	flapUp := map[int]bool{}
	// Downtime must outlast the widest adaptive suspicion window
	// ((1+HealthMax) x Suspicion) so a real crash is confirmed while the
	// peer is actually down in both modes.
	for _, start := range []int{cfg.Events / 4, cfg.Events / 2} {
		flapDown[start] = true
		flapUp[start+12] = true
	}
	snapshotAt := 3 * cfg.Events / 4
	var snap map[string]uint64

	for i := 0; i < cfg.Events; i++ {
		if faults {
			for _, span := range slowSpans {
				if i == span[0] {
					l.setSlow(true)
				}
				if i == span[1] {
					l.setSlow(false)
				}
			}
			if flapDown[i] {
				sys.Net.Crash(rep.Flapper)
				l.crashed[rep.Flapper] = true
			}
			if flapUp[i] {
				sys.Net.Recover(rep.Flapper)
				l.crashed[rep.Flapper] = false
			}
		}
		if _, err := client.Endpoint().Invoke(l.target(i), "Q", nil); err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
		l.settle()
		sys.Step(cfg.Step)
		rep.Driven++
		if faults && l.det != nil {
			for _, n := range sys.Net.Nodes() {
				if h := l.det.HealthOf(n); h > rep.HealthPeak {
					rep.HealthPeak = h
				}
			}
		}
		if faults && i == snapshotAt {
			l.settle()
			snap = l.interiorGauges()
		}
	}

	// Drain: replay, anti-entropy, late windows.
	for i := 0; i < 8; i++ {
		l.settle()
		sys.Step(cfg.Step)
	}
	l.settle()

	if faults {
		final := l.interiorGauges()
		var total uint64
		n := 0
		for key, items := range final {
			delta := items - snap[key]
			if items < snap[key] {
				// A failover re-deploy reset this interior's gauge; count
				// what the fresh instance ingested.
				delta = items
			}
			if delta > rep.PostMax {
				rep.PostMax = delta
			}
			total += delta
			n++
		}
		if n > 0 {
			rep.PostMean = float64(total) / float64(n)
		}
		rep.SplitEvents = sys.SplitEvents()
		rep.Splits = len(rep.SplitEvents)
		rep.Replayed = sys.ReplayedItems()
		for _, ev := range l.sup.Events() {
			if ev.Repaired() {
				rep.Repairs++
			}
		}
		rep.Quarantined = sys.Tuning().Quarantined()
		if l.loop != nil {
			for _, ev := range l.loop.Events() {
				if !ev.Engaged {
					continue
				}
				switch ev.Rule {
				case "quarantine-flapper":
					rep.Quarantines++
				case "raise-replication":
					rep.ReplRaises++
				}
			}
		}
	}

	l.Task.Stop()
	for _, it := range l.Task.Results().Drain() {
		rep.Records = append(rep.Records, it.Tree.String())
	}
	sort.Strings(rep.Records)
	return rep, nil
}

// interiorGauges snapshots ItemsIn per first-level interior key.
func (l *AdaptLab) interiorGauges() map[string]uint64 {
	keys := map[string]bool{}
	for _, n := range l.firstLevelInteriors() {
		keys[n.AggKey] = true
	}
	out := map[string]uint64{}
	for _, e := range l.Sys.AggLoad() {
		if e.Task == l.Task.ID && keys[e.Key] {
			out[e.Key] += e.Items
		}
	}
	return out
}
