package workload

import (
	"fmt"
	"sort"
	"time"

	"p2pm/internal/peer"
)

// schedRunner is the shared churn-schedule engine behind ChurnLab and
// AggLab: the per-event loop that drives workload, settles the pipeline,
// advances virtual time, admits pending joiners, recovers/rejoins
// departed peers, and injects the graceful-leave and crash schedules
// under the one-outstanding-failure rule. The labs differ only in what
// they drive, whom they target and how they score — those arrive as
// schedule hooks — so scheduling fixes land here once instead of
// drifting between per-lab reimplementations.
type schedRunner struct {
	sys *peer.System
	sup *peer.Supervisor

	pending []string        // workers still to join, in admission order
	away    map[string]bool // gracefully departed, awaiting rejoin
	// ignoreSuspect marks detector suspects whose absence is deliberate
	// (e.g. the partitioned home of the survivability scenario); they
	// never block the one-outstanding-failure rule.
	ignoreSuspect func(string) bool

	timeline  []string
	recoverAt map[string]time.Duration
	rejoinAt  map[string]time.Duration

	driven, crashes, leaves, joins, leaveRepairs int

	crashLog []CrashEvent
	joinLog  []JoinEvent
	leaveLog []LeaveEvent
}

func newSchedRunner(sys *peer.System) *schedRunner {
	return &schedRunner{
		sys:       sys,
		away:      make(map[string]bool),
		recoverAt: make(map[string]time.Duration),
		rejoinAt:  make(map[string]time.Duration),
	}
}

// attach wires the runner to the lab's supervisor and records the
// detector's death/recovery events on the shared timeline. Registered
// after the supervisor's own callbacks, so repairs have already run when
// an entry is appended — the entry order is the supervisor's action
// order.
func (r *schedRunner) attach(sup *peer.Supervisor) {
	r.sup = sup
	sup.Detector().OnDeath(func(p string, at time.Duration) {
		r.note("t=%v dead %s", at, p)
	})
	sup.Detector().OnRecover(func(p string, at time.Duration) {
		r.note("t=%v recovered %s", at, p)
	})
}

func (r *schedRunner) note(format string, args ...any) {
	r.timeline = append(r.timeline, fmt.Sprintf(format, args...))
}

// pendingSuspects returns the detector's confirmed-dead set minus the
// peers whose absence is deliberate: ignored suspects and gracefully
// departed workers awaiting their rejoin — neither is an outstanding
// crash, so neither may block the schedule's one-outstanding-failure
// rule.
func (r *schedRunner) pendingSuspects() []string {
	sus := r.sup.Detector().Suspects()
	out := sus[:0]
	for _, s := range sus {
		if r.ignoreSuspect != nil && r.ignoreSuspect(s) {
			continue
		}
		if r.away[s] {
			continue
		}
		out = append(out, s)
	}
	return out
}

// joinEvery resolves the admission cadence: the configured one, or an
// even spread of the pending joins across the run.
func (r *schedRunner) joinEvery(configured, events int) int {
	if configured > 0 {
		return configured
	}
	if len(r.pending) == 0 {
		return 0
	}
	every := events / (len(r.pending) + 1)
	if every < 1 {
		every = 1
	}
	return every
}

// schedule parameterizes one run of the shared event loop.
type schedule struct {
	Events     int
	Step       time.Duration
	MTTR       time.Duration
	CrashEvery int
	LeaveEvery int
	JoinEvery  int
	// SettleBeforeStep settles the pipeline after every driven event
	// (before the clock advances), so checkpoints taken on the Step
	// cadence describe processed state.
	SettleBeforeStep bool

	// Drive issues event i. An error aborts the run; a lab that
	// tolerates drive faults (the home-partition scenario) absorbs them
	// in its closure.
	Drive func(i int) error
	// Settle drains the pipeline (also called before each injected
	// leave/crash so the measured loss is the outage window itself).
	Settle func()
	// Victim names the current leave/crash target.
	Victim func() string
	// VictimOK, when set, further restricts eligible victims (e.g. only
	// worker-pool peers); liveness and the one-outstanding-failure rule
	// are checked by the runner itself.
	VictimOK func(string) bool
	// AfterStep runs right after each clock advance (the home-partition
	// injection point).
	AfterStep func(driven int, now time.Duration)
	// OnJoin runs after each runtime admission; left is the number of
	// joiners still pending.
	OnJoin func(name string, now time.Duration, left int)
}

// sortedDue returns the peers in m whose deadline has passed, sorted, so
// multiple same-tick recoveries/rejoins happen in a deterministic order.
func sortedDue(m map[string]time.Duration, now time.Duration) []string {
	due := make([]string, 0, len(m))
	for name, at := range m {
		if now >= at {
			due = append(due, name)
		}
	}
	sort.Strings(due)
	return due
}

func (r *schedRunner) victimOK(s schedule, v string) bool {
	if s.VictimOK != nil && !s.VictimOK(v) {
		return false
	}
	return r.sys.Net.Alive(v) && len(r.pendingSuspects()) == 0
}

// run drives the event loop: one workload event per iteration with the
// membership schedules interleaved at their configured cadences.
func (r *schedRunner) run(s schedule) error {
	joinEvery := r.joinEvery(s.JoinEvery, s.Events)
	for i := 0; i < s.Events; i++ {
		if err := s.Drive(i); err != nil {
			return err
		}
		r.driven++
		if s.SettleBeforeStep {
			s.Settle()
		}
		r.sys.Step(s.Step)
		now := r.sys.Net.Clock().Now()
		if s.AfterStep != nil {
			s.AfterStep(r.driven, now)
		}
		if joinEvery > 0 && len(r.pending) > 0 && r.driven%joinEvery == 0 {
			name := r.pending[0]
			r.pending = r.pending[1:]
			if _, err := r.sys.JoinPeer(name, "mgr"); err != nil {
				return fmt.Errorf("workload: admitting %s: %w", name, err)
			}
			r.joins++
			r.joinLog = append(r.joinLog, JoinEvent{Peer: name, At: now})
			r.note("t=%v join %s", now, name)
			if s.OnJoin != nil {
				s.OnJoin(name, now, len(r.pending))
			}
		}
		for _, peerName := range sortedDue(r.recoverAt, now) {
			r.sys.Net.Recover(peerName) //nolint:errcheck // known node
			delete(r.recoverAt, peerName)
		}
		for _, peerName := range sortedDue(r.rejoinAt, now) {
			if _, err := r.sys.JoinPeer(peerName, "mgr"); err != nil {
				return fmt.Errorf("workload: re-admitting %s after its leave: %w", peerName, err)
			}
			delete(r.rejoinAt, peerName)
			r.away[peerName] = false
			r.note("t=%v rejoin %s", now, peerName)
		}
		if s.LeaveEvery > 0 && r.driven%s.LeaveEvery == 0 {
			leaver := s.Victim()
			// Like the crash schedule: one departure at a time, and only
			// while the pool is otherwise healthy.
			if r.victimOK(s, leaver) && len(r.rejoinAt) == 0 {
				s.Settle()
				evs, err := r.sys.LeavePeer(leaver)
				if err != nil {
					return fmt.Errorf("workload: %s leaving gracefully: %w", leaver, err)
				}
				for _, ev := range evs {
					if ev.Repaired() {
						r.leaveRepairs++
					}
				}
				r.leaves++
				r.leaveLog = append(r.leaveLog, LeaveEvent{Peer: leaver, At: now})
				r.note("t=%v leave %s", now, leaver)
				r.away[leaver] = true
				r.rejoinAt[leaver] = now + s.MTTR
			}
		}
		if s.CrashEvery > 0 && r.driven%s.CrashEvery == 0 {
			victim := s.Victim()
			// Only one outstanding crash: skip if the pool is still
			// healing from the last one. Let the pipeline drain first:
			// virtual time between events means earlier events are long
			// delivered when the crash strikes, so the measured loss is
			// the outage window itself, not a scheduling artifact.
			if r.victimOK(s, victim) {
				s.Settle()
				r.sys.Net.Crash(victim) //nolint:errcheck // known node
				r.crashes++
				r.crashLog = append(r.crashLog, CrashEvent{Victim: victim, At: now})
				r.note("t=%v crash %s", now, victim)
				r.recoverAt[victim] = now + s.MTTR
			}
		}
	}
	return nil
}
