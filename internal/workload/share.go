package workload

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"p2pm/internal/aggtree"
	"p2pm/internal/algebra"
	"p2pm/internal/peer"
	"p2pm/internal/simnet"
	"p2pm/internal/xmltree"
)

// ShareConfig parameterizes the multi-tenant aggregation scenario: many
// overlapping windowed-group subscriptions over the same source pool,
// deployed either independently (Mode "unshared" — every task builds its
// own aggregation tree) or through the reuse pass (Mode "shared" —
// identical aggregates resolve to a channel on the existing tree's root,
// and contained ones graft onto its partial streams). Each subscription
// is scored for byte-identity against the deterministic expectation
// replayed from the drive schedule, so sharing is measured as pure
// deployment savings, never as an answer change.
type ShareConfig struct {
	Seed    int64
	Sources int // monitored source peers s0..sS-1
	Workers int // merge-host pool w0..wW-1
	// Subs is the number of subscriptions. Subscription 0 spans every
	// source; later ones cover sliding sub-ranges, so the population
	// mixes exact duplicates, contained subsets and partial overlaps.
	Subs   int
	Events int // client calls, driven round-robin across the sources
	// Degree is the tree fan-in bound (default 3).
	Degree int
	// Mode is "shared" (deploy through the reuse pass) or "unshared".
	Mode string
	// Window is the tumbling window; 0 defaults to 8×Step.
	Window time.Duration
	// Step is the virtual time between driven events.
	Step time.Duration
	// CrashEvery crashes the current shared-interior host every k events;
	// LeaveEvery makes it gracefully leave (rejoining after MTTR).
	CrashEvery int
	LeaveEvery int
	MTTR       time.Duration
	// HeartbeatInterval / Suspicion configure the failure detector.
	HeartbeatInterval time.Duration
	Suspicion         time.Duration
	// Replay enables the lossless layer; on by default in DefaultShare —
	// byte-identity through churn needs it.
	Replay             bool
	ReplayBuffer       int
	CheckpointInterval time.Duration
	// Detector is "home" or "gossip" (default gossip).
	Detector string
	// GrowFrom, when in [1, Workers), starts with that many workers; the
	// rest join at runtime, re-parenting shared interiors onto the new
	// DHT owners under every subscriber's feet.
	GrowFrom int
	// JoinEvery admits one pending worker every N events (0 with
	// GrowFrom set spreads the joins evenly).
	JoinEvery int
}

// DefaultShare returns a moderate sharing scenario.
func DefaultShare() ShareConfig {
	return ShareConfig{
		Seed: 1, Sources: 6, Workers: 4, Subs: 12, Events: 48, Degree: 3,
		Mode: "shared", Step: time.Second, MTTR: 10 * time.Second,
		HeartbeatInterval: time.Second, Suspicion: 2 * time.Second,
		Replay: true, Detector: "gossip",
	}
}

// ShareReport summarizes one multi-tenant aggregation run.
type ShareReport struct {
	Mode   string
	Subs   int
	Driven int
	// Operators sums every task's deployed operator count — the sharing
	// headline: unshared grows linearly in Subs × Sources, shared
	// sublinearly (later subscriptions deploy a root, or nothing).
	Operators int
	// ReusedOps / NewOps sum the reuse pass's accounting over all
	// subscriptions (zero in unshared mode).
	ReusedOps int
	NewOps    int
	// Lookups / FailedLookups sum the discovery traffic of the reuse
	// passes.
	Lookups       int
	FailedLookups int
	// ExpectedGroups / CorrectGroups score each subscription's windowed
	// records against its own schedule replay; ByteIdenticalSubs counts
	// subscriptions whose full record set matched byte-for-byte.
	ExpectedGroups    int
	CorrectGroups     int
	ByteIdenticalSubs int
	// Mismatches describes each non-identical subscription (diagnostics).
	Mismatches []string
	Crashes           int
	Leaves            int
	Joins             int
	Deaths            int
	Repairs           int
	LeaveRepairs      int
	Replayed          uint64
	// Ingest is the per-peer operator ingest over sources and workers —
	// sharing shows up as a lower max (partial streams fan out once, not
	// once per subscription).
	Ingest     map[string]uint64
	IngestMax  uint64
	IngestMean float64
	Timeline   []string
	Traffic    simnet.Totals
}

// Completeness is the fraction of expected windowed groups that arrived
// byte-exactly, across all subscriptions.
func (r *ShareReport) Completeness() float64 {
	if r.ExpectedGroups == 0 {
		return 1
	}
	return float64(r.CorrectGroups) / float64(r.ExpectedGroups)
}

// IngestRatio is max/mean per-peer ingest — the hotspot factor.
func (r *ShareReport) IngestRatio() float64 {
	if r.IngestMean == 0 {
		return 0
	}
	return float64(r.IngestMax) / r.IngestMean
}

// OpsPerSub is the mean operator count one subscription cost to deploy.
func (r *ShareReport) OpsPerSub() float64 {
	if r.Subs == 0 {
		return 0
	}
	return float64(r.Operators) / float64(r.Subs)
}

// subRange is one subscription's half-open source interval.
type subRange struct{ start, end int }

// shareRange derives subscription j's source interval: sub 0 spans all
// sources (it seeds the full tree); later subs cycle through lengths
// 2..S at sliding offsets, producing duplicates, prefixes and partial
// overlaps deterministically.
func shareRange(j, sources int) subRange {
	if j == 0 {
		return subRange{0, sources}
	}
	length := 2 + (j-1)%(sources-1)
	start := (j - 1) % (sources - length + 1)
	return subRange{start, start + length}
}

// ShareLab is one assembled multi-tenant aggregation scenario.
type ShareLab struct {
	Sys   *peer.System
	Tasks []*peer.Task
	Sup   *peer.Supervisor
	cfg   ShareConfig
	sched *schedRunner
}

// SetupShare builds the scenario and deploys every subscription — before
// any event is driven, because windowed aggregation is watermark-based:
// a subscriber arriving after a window closed can never see it, so
// byte-identity is only a fair gate for subscriptions that watched the
// whole run.
func SetupShare(cfg ShareConfig) (*ShareLab, error) {
	if cfg.Sources < 2 || cfg.Workers < 1 || cfg.Subs < 1 {
		return nil, fmt.Errorf("workload: share needs >= 2 sources, >= 1 worker, >= 1 sub (got %d/%d/%d)", cfg.Sources, cfg.Workers, cfg.Subs)
	}
	switch cfg.Mode {
	case "shared", "unshared":
	default:
		return nil, fmt.Errorf("workload: unknown share mode %q (want shared or unshared)", cfg.Mode)
	}
	if cfg.Degree <= 1 {
		cfg.Degree = 3
	}
	if cfg.Step <= 0 {
		cfg.Step = time.Second
	}
	if cfg.Window <= 0 {
		cfg.Window = 8 * cfg.Step
	}
	startWorkers := cfg.Workers
	if cfg.GrowFrom > 0 {
		if cfg.GrowFrom >= cfg.Workers {
			return nil, fmt.Errorf("workload: GrowFrom %d out of range [1, %d)", cfg.GrowFrom, cfg.Workers)
		}
		startWorkers = cfg.GrowFrom
	}

	pc := peer.DefaultConfig()
	pc.Seed = cfg.Seed
	pc.Agg.Degree = cfg.Degree
	if cfg.Replay {
		pc.Replay.Buffer = cfg.ReplayBuffer
		if pc.Replay.Buffer <= 0 {
			pc.Replay.Buffer = 4096
		}
		pc.Replay.CheckpointInterval = cfg.CheckpointInterval
		if pc.Replay.CheckpointInterval <= 0 {
			pc.Replay.CheckpointInterval = 2 * cfg.HeartbeatInterval
		}
		if pc.Replay.CheckpointInterval <= 0 {
			pc.Replay.CheckpointInterval = 2 * time.Second
		}
	}
	sys, err := peer.NewSystem(pc)
	if err != nil {
		return nil, err
	}
	mgr, err := sys.AddPeer("mgr")
	if err != nil {
		return nil, err
	}
	for _, name := range []string{"c.com", "mon"} {
		if _, err := sys.AddPeer(name); err != nil {
			return nil, err
		}
	}
	echo := func(*xmltree.Node) (*xmltree.Node, error) {
		return xmltree.Elem("ok"), nil
	}
	for i := 0; i < cfg.Sources; i++ {
		sp, err := sys.AddPeer(fmt.Sprintf("s%d", i))
		if err != nil {
			return nil, err
		}
		sp.Endpoint().Register("Q", echo, nil)
	}
	for i := 0; i < startWorkers; i++ {
		if _, err := sys.AddPeer(fmt.Sprintf("w%d", i)); err != nil {
			return nil, err
		}
	}
	for _, busy := range []string{"mgr", "c.com", "mon"} {
		sys.Net.AddLoad(busy, 1000)
	}
	for i := 0; i < cfg.Sources; i++ {
		sys.Net.AddLoad(fmt.Sprintf("s%d", i), 1000)
	}
	sys.SetAggHosts(func(name string) bool { return strings.HasPrefix(name, "w") })

	lab := &ShareLab{Sys: sys, cfg: cfg, sched: newSchedRunner(sys)}
	for i := startWorkers; i < cfg.Workers; i++ {
		lab.sched.pending = append(lab.sched.pending, fmt.Sprintf("w%d", i))
	}
	for j := 0; j < cfg.Subs; j++ {
		rng := shareRange(j, cfg.Sources)
		var branches []*algebra.Node
		for i := rng.start; i < rng.end; i++ {
			branches = append(branches, algebra.NewAlerter("inCOM", "ws-in", fmt.Sprintf("s%d", i), "e", nil))
		}
		// Roots spread over the peers present at deploy time; runtime
		// joiners host re-parented interiors instead.
		host := fmt.Sprintf("w%d", j%startWorkers)
		union := &algebra.Node{Op: algebra.OpUnion, Peer: host, Inputs: branches, Schema: []string{"e"}}
		group := &algebra.Node{
			Op: algebra.OpGroup, Peer: host, Inputs: []*algebra.Node{union},
			Schema: []string{"e"},
			Group:  &algebra.GroupSpec{KeyAttr: "callee", Window: cfg.Window.String()},
		}
		plan := &algebra.Node{
			Op: algebra.OpPublish, Peer: "mgr", Inputs: []*algebra.Node{group},
			Schema: []string{"e"}, Publish: &algebra.PublishSpec{ChannelID: fmt.Sprintf("share-%04d", j)},
		}
		var task *peer.Task
		if cfg.Mode == "shared" {
			task, err = mgr.DeployPlanShared(plan)
		} else {
			task, err = mgr.DeployPlan(plan)
		}
		if err != nil {
			return nil, fmt.Errorf("workload: deploying subscription %d: %w", j, err)
		}
		lab.Tasks = append(lab.Tasks, task)
	}

	switch cfg.Detector {
	case "", "gossip":
		lab.Sup = sys.StartGossipSupervisor(peer.GossipOptions{
			Seed: cfg.Seed, ProbeInterval: cfg.HeartbeatInterval, Suspicion: cfg.Suspicion,
		})
	case "home":
		lab.Sup = sys.StartSupervisor("mon", peer.DetectorOptions{
			Interval: cfg.HeartbeatInterval, Suspicion: cfg.Suspicion,
		})
	default:
		return nil, fmt.Errorf("workload: unknown detector mode %q (want home or gossip)", cfg.Detector)
	}
	lab.sched.attach(lab.Sup)
	return lab, nil
}

// ShareHost returns the churn target: the host of the seed task's first
// DHT-routed interior (the shared infrastructure every other
// subscription depends on), falling back to its merge root.
func (l *ShareLab) ShareHost() string {
	seed := l.Tasks[0]
	if ins := aggtree.Interiors(seed.Plan); len(ins) > 0 {
		return ins[0].Peer
	}
	host := ""
	seed.Plan.Walk(func(n *algebra.Node) {
		switch n.Op {
		case algebra.OpGroup, algebra.OpMergeAgg:
			host = n.Peer
		}
	})
	return host
}

// settle waits (bounded) until all tasks' operators stop consuming.
func (l *ShareLab) settle() {
	sum := func() uint64 {
		var n uint64
		for _, t := range l.Tasks {
			n += t.ItemsProcessed()
		}
		return n
	}
	last, stable := uint64(0), 0
	for i := 0; i < 2000 && stable < 3; i++ {
		cur := sum()
		if cur == last {
			stable++
		} else {
			stable, last = 0, cur
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// expected replays the drive schedule through subscription j's source
// interval: per (window|key) the exact <group> record a lossless run
// emits.
func (l *ShareLab) expected(rng subRange) map[string]string {
	counts := make(map[string]int)
	windows := make(map[string]int64)
	keys := make(map[string]string)
	for i := 0; i < l.cfg.Events; i++ {
		src := i % l.cfg.Sources
		if src < rng.start || src >= rng.end {
			continue
		}
		w := int64(time.Duration(i) * l.cfg.Step / l.cfg.Window)
		key := fmt.Sprintf("http://s%d", src)
		gk := fmt.Sprintf("%d|%s", w, key)
		counts[gk]++
		windows[gk], keys[gk] = w, key
	}
	recs := make(map[string]string, len(counts))
	for gk, c := range counts {
		n := xmltree.Elem("group")
		n.SetAttr("key", keys[gk])
		n.SetAttr("count", fmt.Sprint(c))
		n.SetAttr("window", fmt.Sprint(windows[gk]))
		recs[gk] = n.String()
	}
	return recs
}

// Run drives the events while injecting the churn schedules, settles,
// tears the tasks down in dependency order (the seed task first: closing
// its alerter channels floods EOS through every sharing consumer, so
// trailing windows flush before any consumer detaches), and scores every
// subscription byte-exactly.
func (l *ShareLab) Run() (*ShareReport, error) {
	cfg := l.cfg
	sys, client := l.Sys, l.Sys.Peer("c.com")
	rep := &ShareReport{Mode: cfg.Mode, Subs: cfg.Subs}
	r := l.sched

	err := r.run(schedule{
		Events: cfg.Events, Step: cfg.Step, MTTR: cfg.MTTR,
		CrashEvery: cfg.CrashEvery, LeaveEvery: cfg.LeaveEvery, JoinEvery: cfg.JoinEvery,
		SettleBeforeStep: true,
		Drive: func(i int) error {
			target := fmt.Sprintf("s%d", i%cfg.Sources)
			if _, err := client.Endpoint().Invoke(target, "Q", nil); err != nil {
				return fmt.Errorf("workload: driving event %d: %w", i, err)
			}
			return nil
		},
		Settle:   l.settle,
		Victim:   l.ShareHost,
		VictimOK: func(v string) bool { return strings.HasPrefix(v, "w") },
	})
	if err != nil {
		return nil, err
	}
	rep.Driven = r.driven
	rep.Crashes = r.crashes
	rep.Leaves = r.leaves
	rep.Joins = r.joins
	rep.LeaveRepairs = r.leaveRepairs

	for i := 0; i < 64 && len(r.pendingSuspects()) > 0; i++ {
		sys.Step(cfg.Step)
	}
	for i := 0; i < 8; i++ {
		l.settle()
		sys.Step(cfg.Step)
	}
	l.settle()

	// Deployment accounting and the ingest snapshot, before teardown —
	// ingest comes from the System.AggLoad stats surface (shared with
	// the re-chunking controller), folded over this lab's tasks.
	byPeer := make(map[string]uint64)
	mine := make(map[string]bool, len(l.Tasks))
	for _, t := range l.Tasks {
		rep.Operators += t.OperatorsDeployed()
		mine[t.ID] = true
		if t.Reuse != nil {
			rep.ReusedOps += t.Reuse.ReusedOps
			rep.NewOps += t.Reuse.NewOps
			rep.Lookups += t.Reuse.Lookups
			rep.FailedLookups += t.Reuse.FailedLookups
		}
	}
	for _, e := range sys.AggLoad() {
		if mine[e.Task] {
			byPeer[e.Peer] += e.Items
		}
	}
	rep.Ingest = make(map[string]uint64)
	var total uint64
	hosts := 0
	addHost := func(name string) {
		rep.Ingest[name] = byPeer[name]
		total += byPeer[name]
		if byPeer[name] > rep.IngestMax {
			rep.IngestMax = byPeer[name]
		}
		hosts++
	}
	for i := 0; i < cfg.Sources; i++ {
		addHost(fmt.Sprintf("s%d", i))
	}
	for i := 0; i < cfg.Workers; i++ {
		addHost(fmt.Sprintf("w%d", i))
	}
	if hosts > 0 {
		rep.IngestMean = float64(total) / float64(hosts)
	}

	// Teardown in deployment order: earlier tasks never consume later
	// ones' streams, so stopping the seed first propagates EOS to every
	// dependent before its own Stop detaches it.
	l.Tasks[0].Stop()
	l.settle()
	for _, t := range l.Tasks[1:] {
		t.Stop()
	}
	l.settle()

	for j, t := range l.Tasks {
		exp := l.expected(shareRange(j, cfg.Sources))
		rep.ExpectedGroups += len(exp)
		got := make(map[string][]string)
		extra := 0
		for _, it := range t.Results().Drain() {
			if it.Tree.Label != "group" {
				continue
			}
			gk := it.Tree.AttrOr("window", "?") + "|" + it.Tree.AttrOr("key", "?")
			got[gk] = append(got[gk], it.Tree.String())
			if _, ok := exp[gk]; !ok {
				extra++
			}
		}
		identical := extra == 0
		var missing, wrong []string
		for gk, want := range exp {
			rs := got[gk]
			if len(rs) == 1 && rs[0] == want {
				rep.CorrectGroups++
			} else {
				identical = false
				if len(rs) == 0 {
					missing = append(missing, gk)
				} else {
					wrong = append(wrong, fmt.Sprintf("%s(n=%d)", gk, len(rs)))
				}
			}
		}
		if identical {
			rep.ByteIdenticalSubs++
		} else {
			sort.Strings(missing)
			sort.Strings(wrong)
			rng := shareRange(j, cfg.Sources)
			rep.Mismatches = append(rep.Mismatches, fmt.Sprintf(
				"sub %d [%d,%d): missing=%v wrong=%v extra=%d", j, rng.start, rng.end, missing, wrong, extra))
		}
	}
	rep.Deaths = len(l.Sup.Deaths())
	for _, ev := range l.Sup.Events() {
		if ev.Repaired() {
			rep.Repairs++
		}
	}
	rep.Replayed = sys.ReplayedItems()
	rep.Timeline = append([]string(nil), r.timeline...)
	rep.Traffic = sys.Net.Totals()
	return rep, nil
}

// sortedKeys is a test helper shared with the experiment printer.
func sortedKeys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
