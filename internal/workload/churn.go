package workload

import (
	"fmt"
	"time"

	"p2pm/internal/algebra"
	"p2pm/internal/peer"
	"p2pm/internal/simnet"
	"p2pm/internal/stats"
	"p2pm/internal/xmltree"
)

// ChurnConfig parameterizes the churn scenario: a monitored service, a
// pool of relay workers hosting the subscription's forwarding operator,
// and a crash schedule that repeatedly kills the active relay while
// events keep flowing. The supervisor must detect each death and migrate
// the operator; the report measures what the churn cost. The elastic
// knobs (GrowFrom/JoinEvery) turn membership itself into workload: the
// pool starts small and new workers join at runtime through the
// membership protocol, with no pre-registration anywhere.
type ChurnConfig struct {
	Seed    int64
	Workers int // full relay worker pool (w0 ... wN-1)
	Events  int // total source events driven
	// CrashEvery crashes the active relay after every k driven events
	// (0 = no churn, the baseline).
	CrashEvery int
	// LeaveEvery makes the active relay host *gracefully leave* after
	// every k driven events (0 = never): System.LeavePeer announces the
	// departure, hands off DHT keys and migrates the relay immediately —
	// no suspicion window, no detection latency, no death declared. The
	// leaver rejoins through the membership protocol after MTTR. Leave
	// and rejoin events appear in the Timeline.
	LeaveEvery int
	// MTTR is the virtual downtime before a crashed worker returns and
	// rejoins the pool.
	MTTR time.Duration
	// Step is the virtual time between driven events.
	Step time.Duration
	// HeartbeatInterval / Suspicion configure the failure detector.
	HeartbeatInterval time.Duration
	Suspicion         time.Duration
	// Replay enables the lossless-failover layer: upstream replay
	// buffers, consumer cursors and operator checkpointing. Events
	// published during an outage window are then retransmitted after the
	// migration instead of lost.
	Replay bool
	// ReplayBuffer is the per-channel retention (items) when Replay is
	// on; 0 picks a default that covers the whole run.
	ReplayBuffer int
	// CheckpointInterval is the operator checkpoint cadence when Replay
	// is on; 0 picks a default of two heartbeat intervals.
	CheckpointInterval time.Duration
	// Detector selects the failure-detection mode: "home" (default —
	// PR 1's single heartbeat detector hosted at mon) or "gossip"
	// (SWIM-style decentralized detection with a quorum-confirmed
	// membership view; see docs/DETECTOR.md).
	Detector string
	// PartitionHomeAfter, when > 0, isolates the monitor peer ("mon" —
	// the home a heartbeat detector would live on) from the rest of
	// the network after that many driven events. This is the detector
	// survivability scenario: gossip detection keeps working, a home
	// detector goes blind and its silence-is-death rule kills the
	// healthy peers.
	PartitionHomeAfter int
	// GrowFrom, when in [2, Workers), starts the run with only that many
	// workers pre-registered; the remaining Workers-GrowFrom join at
	// runtime via System.JoinPeer (seeded at mgr) on the JoinEvery
	// cadence — the grow-from-k-to-n elastic scenario. 0 pre-registers
	// the whole pool (the classic static membership).
	GrowFrom int
	// JoinEvery admits one pending worker every N driven events. 0 with
	// GrowFrom set spreads the joins evenly across the run.
	JoinEvery int
	// Spread enables the DHT elasticity machinery: virtual-node tokens
	// (ownership rebalances incrementally on join/leave) plus
	// bounded-load placement (no peer serves more than ~2× the mean
	// checkpoint traffic). See docs/MEMBERSHIP.md.
	Spread bool
	// Pipelines deploys that many parallel relay pipelines (default 1).
	// Each has its own relay operator and named channel; the crash
	// schedule targets pipeline 0's relay. Many pipelines mean many
	// checkpoint keys — the workload the Spread measurement needs.
	Pipelines int
}

// spreadVirtualNodes / spreadLoadBound are the ring settings Spread
// turns on: enough tokens to fragment ownership at pool scale, and the
// classic 2× bounded-load factor.
const (
	spreadVirtualNodes = 32
	spreadLoadBound    = 2.0
)

// DefaultChurn returns a moderate churn scenario.
func DefaultChurn() ChurnConfig {
	return ChurnConfig{
		Seed: 1, Workers: 4, Events: 60, CrashEvery: 15,
		MTTR: 10 * time.Second, Step: time.Second,
		HeartbeatInterval: time.Second, Suspicion: 2 * time.Second,
	}
}

// CrashEvent records one injected relay crash.
type CrashEvent struct {
	Victim string
	At     time.Duration
}

// JoinEvent records one runtime worker admission.
type JoinEvent struct {
	Peer string
	At   time.Duration
}

// LeaveEvent records one graceful departure.
type LeaveEvent struct {
	Peer string
	At   time.Duration
}

// ChurnReport summarizes one churn run.
type ChurnReport struct {
	Driven    int // events driven at the source
	Pipelines int // parallel pipelines each event traverses
	Received  int // results that reached the subscribers (all pipelines)
	Crashes   int // relay crashes injected
	Deaths    int // deaths the detector declared
	Repairs   int // successful operator migrations
	Joins     int // workers admitted at runtime
	Leaves    int // graceful departures injected
	// LeaveRepairs counts migrations the graceful-leave handoffs took
	// (they bypass the supervisor, so Repairs does not include them).
	LeaveRepairs int
	Replayed     uint64 // items retransmitted from replay buffers
	// CrashLog is the injected crash schedule, in injection order.
	CrashLog []CrashEvent
	// JoinLog is the runtime admission schedule, in join order.
	JoinLog []JoinEvent
	// LeaveLog is the graceful-departure schedule, in leave order.
	LeaveLog []LeaveEvent
	// Timeline interleaves the run's membership events (join, crash,
	// dead, recovered) in occurrence order with virtual timestamps —
	// the determinism artifact: same seed, same config ⇒ byte-identical
	// timelines.
	Timeline []string
	// DetectionLatency summarizes virtual crash→declared-dead time.
	DetectionLatency *stats.Summary
	Traffic          simnet.Totals
}

// Expected is the number of results a lossless run delivers: every
// driven event through every pipeline.
func (r *ChurnReport) Expected() int {
	p := r.Pipelines
	if p < 1 {
		p = 1
	}
	return r.Driven * p
}

// Completeness is the fraction of expected results that arrived.
func (r *ChurnReport) Completeness() float64 {
	if r.Expected() == 0 {
		return 1
	}
	return float64(r.Received) / float64(r.Expected())
}

// ChurnLab is one assembled churn scenario.
type ChurnLab struct {
	Sys   *peer.System
	Task  *peer.Task   // pipeline 0 (the crash-schedule target)
	Tasks []*peer.Task // all deployed pipelines
	Sup   *peer.Supervisor
	cfg   ChurnConfig

	sched *schedRunner
}

// SetupChurn builds the scenario: src.com hosts the monitored service Q,
// c.com calls it, the relay operator(s) start on the initial worker
// pool, the publisher runs at mgr, and a supervisor at mon watches
// everything. Non-worker peers are load-biased so failovers stay inside
// the worker pool. With GrowFrom set, only the initial workers exist at
// start — the rest of the pool arrives through the join protocol while
// events flow.
func SetupChurn(cfg ChurnConfig) (*ChurnLab, error) {
	if cfg.Workers < 2 {
		return nil, fmt.Errorf("workload: churn needs >= 2 workers (got %d)", cfg.Workers)
	}
	startWorkers := cfg.Workers
	if cfg.GrowFrom > 0 {
		if cfg.GrowFrom < 2 || cfg.GrowFrom > cfg.Workers {
			return nil, fmt.Errorf("workload: GrowFrom %d out of range [2, %d]", cfg.GrowFrom, cfg.Workers)
		}
		// The join schedule must complete within the run: a stranded
		// pending worker would silently skew every "full scale" claim
		// (and the steady-state load window would never open).
		if pending := cfg.Workers - cfg.GrowFrom; cfg.JoinEvery > 0 && pending*cfg.JoinEvery > cfg.Events {
			return nil, fmt.Errorf("workload: %d joins every %d events do not fit in %d events", pending, cfg.JoinEvery, cfg.Events)
		}
		startWorkers = cfg.GrowFrom
	}
	if cfg.Pipelines < 1 {
		cfg.Pipelines = 1
	}
	pc := peer.DefaultConfig()
	pc.Seed = cfg.Seed
	if cfg.Replay {
		pc.Replay.Buffer = cfg.ReplayBuffer
		if pc.Replay.Buffer <= 0 {
			pc.Replay.Buffer = 1024
		}
		pc.Replay.CheckpointInterval = cfg.CheckpointInterval
		if pc.Replay.CheckpointInterval <= 0 {
			pc.Replay.CheckpointInterval = 2 * cfg.HeartbeatInterval
		}
		if pc.Replay.CheckpointInterval <= 0 {
			pc.Replay.CheckpointInterval = 2 * time.Second
		}
	}
	if cfg.Spread {
		pc.DHT.VirtualNodes = spreadVirtualNodes
		pc.DHT.LoadBound = spreadLoadBound
		// Bounded-load reads pay successor-scan hops; the per-reader
		// location cache (invalidated on every membership change) shaves
		// them off the checkpoint-restore path.
		pc.DHT.ReadCache = true
	}
	sys, err := peer.NewSystem(pc)
	if err != nil {
		return nil, err
	}
	mgr, err := sys.AddPeer("mgr")
	if err != nil {
		return nil, err
	}
	src, err := sys.AddPeer("src.com")
	if err != nil {
		return nil, err
	}
	src.Endpoint().Register("Q", func(*xmltree.Node) (*xmltree.Node, error) {
		return xmltree.Elem("ok"), nil
	}, nil)
	for _, name := range []string{"c.com", "mon"} {
		if _, err := sys.AddPeer(name); err != nil {
			return nil, err
		}
	}
	for i := 0; i < startWorkers; i++ {
		if _, err := sys.AddPeer(fmt.Sprintf("w%d", i)); err != nil {
			return nil, err
		}
	}
	for _, busy := range []string{"mgr", "src.com", "c.com", "mon"} {
		sys.Net.AddLoad(busy, 1000)
	}

	lab := &ChurnLab{Sys: sys, cfg: cfg, sched: newSchedRunner(sys)}
	// The partitioned home of the survivability scenario stays declared
	// dead for the rest of the run; its absence is deliberate and must
	// not block the schedule's one-outstanding-crash rule.
	lab.sched.ignoreSuspect = func(s string) bool {
		return cfg.PartitionHomeAfter > 0 && s == "mon"
	}
	for i := startWorkers; i < cfg.Workers; i++ {
		lab.sched.pending = append(lab.sched.pending, fmt.Sprintf("w%d", i))
	}
	for i := 0; i < cfg.Pipelines; i++ {
		channelID := "churned"
		if i > 0 {
			channelID = fmt.Sprintf("churned%d", i)
		}
		al := algebra.NewAlerter("inCOM", "ws-in", "src.com", "e", nil)
		relay := &algebra.Node{
			Op: algebra.OpUnion, Peer: fmt.Sprintf("w%d", i%startWorkers),
			Inputs: []*algebra.Node{al}, Schema: []string{"e"},
		}
		plan := &algebra.Node{
			Op: algebra.OpPublish, Peer: "mgr", Inputs: []*algebra.Node{relay},
			Schema: []string{"e"}, Publish: &algebra.PublishSpec{ChannelID: channelID},
		}
		task, err := mgr.DeployPlan(plan)
		if err != nil {
			return nil, err
		}
		lab.Tasks = append(lab.Tasks, task)
	}
	lab.Task = lab.Tasks[0]
	switch cfg.Detector {
	case "", "home":
		lab.Sup = sys.StartSupervisor("mon", peer.DetectorOptions{
			Interval: cfg.HeartbeatInterval, Suspicion: cfg.Suspicion,
		})
	case "gossip":
		lab.Sup = sys.StartGossipSupervisor(peer.GossipOptions{
			Seed: cfg.Seed, ProbeInterval: cfg.HeartbeatInterval, Suspicion: cfg.Suspicion,
		})
	default:
		return nil, fmt.Errorf("workload: unknown detector mode %q (want home or gossip)", cfg.Detector)
	}
	lab.sched.attach(lab.Sup)
	return lab, nil
}

// RelayHost returns the peer currently hosting pipeline 0's relay
// operator (the crash-schedule target).
func (l *ChurnLab) RelayHost() string {
	host := ""
	l.Task.Plan.Walk(func(n *algebra.Node) {
		if n.Op == algebra.OpUnion {
			host = n.Peer
		}
	})
	return host
}

// resultCount sums settled results across every pipeline.
func (l *ChurnLab) resultCount() int {
	total := 0
	for _, t := range l.Tasks {
		total += t.Results().Len()
	}
	return total
}

// settle waits (bounded) until the result count stops growing — the
// in-memory stand-in for the virtual time that separates events in the
// modeled deployment.
func (l *ChurnLab) settle() {
	last, stable := -1, 0
	for i := 0; i < 200 && stable < 2; i++ {
		cur := l.resultCount()
		if cur == last {
			stable++
		} else {
			stable = 0
			last = cur
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// partitionHome isolates mon from every other current peer — including
// ones that joined after a previous isolation, so a runtime admission
// cannot quietly bridge the split.
func (l *ChurnLab) partitionHome() {
	rest := make([]string, 0, len(l.Sys.Peers()))
	for _, p := range l.Sys.Peers() {
		if p != "mon" {
			rest = append(rest, p)
		}
	}
	l.Sys.Net.Partition([]string{"mon"}, rest)
}

// Run drives the configured number of events while injecting the join,
// crash and (optionally) home-partition schedules, stops the tasks, and
// reports completeness, failover counts and detection latency. Events
// driven during an outage window (relay dead, death not yet detected)
// are genuinely lost — that loss, versus the churn rate, is the
// experiment's measurement.
func (l *ChurnLab) Run() (*ChurnReport, error) {
	cfg := l.cfg
	sys, client := l.Sys, l.Sys.Peer("c.com")
	rep := &ChurnReport{Pipelines: cfg.Pipelines, DetectionLatency: &stats.Summary{}}
	r := l.sched
	partitioned := false

	err := r.run(schedule{
		Events: cfg.Events, Step: cfg.Step, MTTR: cfg.MTTR,
		CrashEvery: cfg.CrashEvery, LeaveEvery: cfg.LeaveEvery, JoinEvery: cfg.JoinEvery,
		// Let the pipeline drain before advancing the clock when replay
		// is on, so checkpoints taken on the Step cadence describe
		// processed state, not a starved wall-clock snapshot. The lossy
		// mode has no checkpoints and keeps PR 1's measured semantics
		// (it still settles before each crash).
		SettleBeforeStep: cfg.Replay,
		Drive: func(int) error {
			if _, err := client.Endpoint().Invoke("src.com", "Q", nil); err != nil {
				// Only the home-partition scenario may wreck the
				// deployment (the blind detector crashes the source
				// fabric); there the event counts as driven-and-lost —
				// that loss IS the measurement. Everywhere else a failed
				// Invoke is a broken setup and must surface, not read as
				// a completeness dip.
				if cfg.PartitionHomeAfter <= 0 {
					return err
				}
			}
			return nil
		},
		Settle: l.settle,
		Victim: l.RelayHost,
		AfterStep: func(driven int, _ time.Duration) {
			if cfg.PartitionHomeAfter > 0 && driven == cfg.PartitionHomeAfter {
				l.partitionHome()
				partitioned = true
			}
		},
		OnJoin: func(_ string, _ time.Duration, left int) {
			if partitioned {
				// Joining mid-isolation must not bridge the split: the
				// newcomer lands on the majority side.
				l.partitionHome()
			}
			if left == 0 {
				// Growth complete: steady-state service-load measurements
				// (the X3 checkpoint-spread table) start here, excluding
				// deployment and growth traffic.
				sys.DB.ResetLoad()
			}
		},
	})
	if err != nil {
		return nil, err
	}
	rep.Driven = r.driven
	rep.Crashes = r.crashes
	rep.Leaves = r.leaves
	rep.Joins = r.joins
	rep.LeaveRepairs = r.leaveRepairs
	rep.CrashLog = append([]CrashEvent(nil), r.crashLog...)
	rep.JoinLog = append([]JoinEvent(nil), r.joinLog...)
	rep.LeaveLog = append([]LeaveEvent(nil), r.leaveLog...)
	// Let outstanding detections finish so the run's cost is complete.
	// Deaths are matched against the injected crash schedule as a
	// multiset: a worker that joined, crashed, recovered and crashed
	// again counts once per injected crash, while deaths the supervisor
	// declares for other reasons — the partitioned home, a join-flap
	// false positive — are not injected crashes and must not satisfy
	// (or overshoot) the wait.
	injectedDeaths := func() int {
		quota := map[string]int{}
		for _, c := range rep.CrashLog {
			quota[c.Victim]++
		}
		n := 0
		for _, d := range l.Sup.Deaths() {
			if quota[d] > 0 {
				quota[d]--
				n++
			}
		}
		return n
	}
	for i := 0; i < 64 && injectedDeaths() < rep.Crashes; i++ {
		sys.Step(cfg.Step)
	}
	if cfg.Replay {
		// With replay on, every driven event is recoverable: keep
		// stepping (migrations replay outage windows, anti-entropy sweeps
		// refill link losses) until the last result lands. The bound is
		// generous — on a loaded machine the operator goroutines may need
		// many settle rounds to drain — but a run whose substrate was
		// destroyed (home-partition scenario) stops making progress, so
		// bail once the count stalls.
		last, stalled := -1, 0
		for i := 0; i < 1000 && l.resultCount() < rep.Expected() && stalled < 50; i++ {
			sys.Step(cfg.Step)
			l.settle()
			if cur := l.resultCount(); cur == last {
				stalled++
			} else {
				last, stalled = cur, 0
			}
		}
	}
	for _, t := range l.Tasks {
		t.Stop()
	}
	rep.Received = 0
	for _, t := range l.Tasks {
		rep.Received += len(t.Results().Drain())
	}
	rep.Deaths = len(l.Sup.Deaths())
	rep.Replayed = sys.ReplayedItems()
	for _, ev := range l.Sup.Events() {
		if ev.Repaired() {
			rep.Repairs++
		}
	}
	// Detection latency pairs each injected crash with the earliest
	// not-yet-consumed repair event naming its victim at or after the
	// crash time. Consuming events matters once joins are in play: a
	// joined-then-crashed-then-recovered worker can be a victim twice,
	// and both crashes must pair with their own detection instead of
	// the first one double-counting. Deaths the supervisor declares for
	// other reasons (the partitioned home) never enter the sample.
	events := l.Sup.Events()
	used := make([]bool, len(events))
	for _, c := range rep.CrashLog {
		for i, ev := range events {
			if !used[i] && ev.From == c.Victim && ev.At >= c.At {
				used[i] = true
				rep.DetectionLatency.Add(float64(ev.At-c.At) / float64(time.Second))
				break
			}
		}
	}
	rep.Timeline = append([]string(nil), r.timeline...)
	rep.Traffic = sys.Net.Totals()
	return rep, nil
}
