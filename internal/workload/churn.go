package workload

import (
	"fmt"
	"time"

	"p2pm/internal/algebra"
	"p2pm/internal/peer"
	"p2pm/internal/simnet"
	"p2pm/internal/stats"
	"p2pm/internal/xmltree"
)

// ChurnConfig parameterizes the churn scenario: a monitored service, a
// pool of relay workers hosting the subscription's forwarding operator,
// and a crash schedule that repeatedly kills the active relay while
// events keep flowing. The supervisor must detect each death and migrate
// the operator; the report measures what the churn cost.
type ChurnConfig struct {
	Seed    int64
	Workers int // relay worker pool (w0 ... wN-1)
	Events  int // total source events driven
	// CrashEvery crashes the active relay after every k driven events
	// (0 = no churn, the baseline).
	CrashEvery int
	// MTTR is the virtual downtime before a crashed worker returns and
	// rejoins the pool.
	MTTR time.Duration
	// Step is the virtual time between driven events.
	Step time.Duration
	// HeartbeatInterval / Suspicion configure the failure detector.
	HeartbeatInterval time.Duration
	Suspicion         time.Duration
	// Replay enables the lossless-failover layer: upstream replay
	// buffers, consumer cursors and operator checkpointing. Events
	// published during an outage window are then retransmitted after the
	// migration instead of lost.
	Replay bool
	// ReplayBuffer is the per-channel retention (items) when Replay is
	// on; 0 picks a default that covers the whole run.
	ReplayBuffer int
	// CheckpointInterval is the operator checkpoint cadence when Replay
	// is on; 0 picks a default of two heartbeat intervals.
	CheckpointInterval time.Duration
	// Detector selects the failure-detection mode: "home" (default —
	// PR 1's single heartbeat detector hosted at mon) or "gossip"
	// (SWIM-style decentralized detection with a quorum-confirmed
	// membership view; see docs/DETECTOR.md).
	Detector string
	// PartitionHomeAfter, when > 0, isolates the monitor peer ("mon" —
	// the home a heartbeat detector would live on) from the rest of
	// the network after that many driven events. This is the detector
	// survivability scenario: gossip detection keeps working, a home
	// detector goes blind and its silence-is-death rule kills the
	// healthy peers.
	PartitionHomeAfter int
}

// DefaultChurn returns a moderate churn scenario.
func DefaultChurn() ChurnConfig {
	return ChurnConfig{
		Seed: 1, Workers: 4, Events: 60, CrashEvery: 15,
		MTTR: 10 * time.Second, Step: time.Second,
		HeartbeatInterval: time.Second, Suspicion: 2 * time.Second,
	}
}

// CrashEvent records one injected relay crash.
type CrashEvent struct {
	Victim string
	At     time.Duration
}

// ChurnReport summarizes one churn run.
type ChurnReport struct {
	Driven   int    // events driven at the source
	Received int    // results that reached the subscriber
	Crashes  int    // relay crashes injected
	Deaths   int    // deaths the detector declared
	Repairs  int    // successful operator migrations
	Replayed uint64 // items retransmitted from replay buffers
	// CrashLog is the injected crash schedule, in injection order.
	CrashLog []CrashEvent
	// DetectionLatency summarizes virtual crash→declared-dead time.
	DetectionLatency *stats.Summary
	Traffic          simnet.Totals
}

// Completeness is the fraction of driven events whose results arrived.
func (r *ChurnReport) Completeness() float64 {
	if r.Driven == 0 {
		return 1
	}
	return float64(r.Received) / float64(r.Driven)
}

// ChurnLab is one assembled churn scenario.
type ChurnLab struct {
	Sys  *peer.System
	Task *peer.Task
	Sup  *peer.Supervisor
	cfg  ChurnConfig
}

// SetupChurn builds the scenario: src.com hosts the monitored service Q,
// c.com calls it, the relay operator starts on w0, the publisher runs at
// mgr, and a supervisor at mon watches everything. Non-worker peers are
// load-biased so failovers stay inside the worker pool.
func SetupChurn(cfg ChurnConfig) (*ChurnLab, error) {
	if cfg.Workers < 2 {
		return nil, fmt.Errorf("workload: churn needs >= 2 workers (got %d)", cfg.Workers)
	}
	opts := peer.DefaultOptions()
	opts.Seed = cfg.Seed
	if cfg.Replay {
		opts.ReplayBuffer = cfg.ReplayBuffer
		if opts.ReplayBuffer <= 0 {
			opts.ReplayBuffer = 1024
		}
		opts.CheckpointInterval = cfg.CheckpointInterval
		if opts.CheckpointInterval <= 0 {
			opts.CheckpointInterval = 2 * cfg.HeartbeatInterval
		}
		if opts.CheckpointInterval <= 0 {
			opts.CheckpointInterval = 2 * time.Second
		}
	}
	sys := peer.NewSystem(opts)
	mgr, err := sys.AddPeer("mgr")
	if err != nil {
		return nil, err
	}
	src, err := sys.AddPeer("src.com")
	if err != nil {
		return nil, err
	}
	src.Endpoint().Register("Q", func(*xmltree.Node) (*xmltree.Node, error) {
		return xmltree.Elem("ok"), nil
	}, nil)
	for _, name := range []string{"c.com", "mon"} {
		if _, err := sys.AddPeer(name); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		if _, err := sys.AddPeer(fmt.Sprintf("w%d", i)); err != nil {
			return nil, err
		}
	}
	for _, busy := range []string{"mgr", "src.com", "c.com", "mon"} {
		sys.Net.AddLoad(busy, 1000)
	}

	al := algebra.NewAlerter("inCOM", "ws-in", "src.com", "e", nil)
	relay := &algebra.Node{Op: algebra.OpUnion, Peer: "w0", Inputs: []*algebra.Node{al}, Schema: []string{"e"}}
	plan := &algebra.Node{
		Op: algebra.OpPublish, Peer: "mgr", Inputs: []*algebra.Node{relay},
		Schema: []string{"e"}, Publish: &algebra.PublishSpec{ChannelID: "churned"},
	}
	task, err := mgr.DeployPlan(plan)
	if err != nil {
		return nil, err
	}
	var sup *peer.Supervisor
	switch cfg.Detector {
	case "", "home":
		sup = sys.StartSupervisor("mon", peer.DetectorOptions{
			Interval: cfg.HeartbeatInterval, Suspicion: cfg.Suspicion,
		})
	case "gossip":
		sup = sys.StartGossipSupervisor(peer.GossipOptions{
			Seed: cfg.Seed, ProbeInterval: cfg.HeartbeatInterval, Suspicion: cfg.Suspicion,
		})
	default:
		return nil, fmt.Errorf("workload: unknown detector mode %q (want home or gossip)", cfg.Detector)
	}
	return &ChurnLab{Sys: sys, Task: task, Sup: sup, cfg: cfg}, nil
}

// RelayHost returns the peer currently hosting the relay operator.
func (l *ChurnLab) RelayHost() string {
	host := ""
	l.Task.Plan.Walk(func(n *algebra.Node) {
		if n.Op == algebra.OpUnion {
			host = n.Peer
		}
	})
	return host
}

// settle waits (bounded) until the task's result count stops growing —
// the in-memory stand-in for the virtual time that separates events in
// the modeled deployment.
func (l *ChurnLab) settle() {
	last, stable := -1, 0
	for i := 0; i < 200 && stable < 2; i++ {
		cur := l.Task.Results().Len()
		if cur == last {
			stable++
		} else {
			stable = 0
			last = cur
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// pendingSuspects returns the detector's confirmed-dead set minus the
// deliberately partitioned home peer: "mon" isolated by the
// survivability scenario stays declared dead for the rest of the run,
// and must not block the crash schedule's one-outstanding-crash rule.
func (l *ChurnLab) pendingSuspects() []string {
	sus := l.Sup.Detector().Suspects()
	if l.cfg.PartitionHomeAfter <= 0 {
		return sus
	}
	out := sus[:0]
	for _, s := range sus {
		if s != "mon" {
			out = append(out, s)
		}
	}
	return out
}

// Run drives the configured number of events while injecting the crash
// (and, optionally, home-partition) schedule, stops the task, and
// reports completeness, failover counts and detection latency. Events
// driven during an outage window (relay dead, death not yet detected)
// are genuinely lost — that loss, versus the churn rate, is the
// experiment's measurement.
func (l *ChurnLab) Run() (*ChurnReport, error) {
	cfg := l.cfg
	sys, client := l.Sys, l.Sys.Peer("c.com")
	rep := &ChurnReport{DetectionLatency: &stats.Summary{}}
	recoverAt := map[string]time.Duration{}

	for i := 0; i < cfg.Events; i++ {
		if _, err := client.Endpoint().Invoke("src.com", "Q", nil); err != nil {
			// Only the home-partition scenario may wreck the deployment
			// (the blind detector crashes the source fabric); there the
			// event counts as driven-and-lost — that loss IS the
			// measurement. Everywhere else a failed Invoke is a broken
			// setup and must surface, not read as a completeness dip.
			if cfg.PartitionHomeAfter <= 0 {
				return nil, err
			}
		}
		rep.Driven++
		if cfg.Replay {
			// Let the pipeline drain before advancing the clock: one
			// virtual Step models enough real time for the event to
			// traverse the deployment, so checkpoints taken on the Step
			// cadence describe processed state, not a starved wall-clock
			// snapshot. The lossy mode has no checkpoints and keeps PR 1's
			// measured semantics (it still settles before each crash).
			l.settle()
		}
		sys.Step(cfg.Step)
		now := sys.Net.Clock().Now()
		if cfg.PartitionHomeAfter > 0 && rep.Driven == cfg.PartitionHomeAfter {
			rest := make([]string, 0, len(sys.Peers()))
			for _, p := range sys.Peers() {
				if p != "mon" {
					rest = append(rest, p)
				}
			}
			sys.Net.Partition([]string{"mon"}, rest)
		}
		for peerName, at := range recoverAt {
			if now >= at {
				sys.Net.Recover(peerName) //nolint:errcheck // known node
				delete(recoverAt, peerName)
			}
		}
		if cfg.CrashEvery > 0 && rep.Driven%cfg.CrashEvery == 0 {
			victim := l.RelayHost()
			// Only one outstanding crash: skip if the pool is still
			// healing from the last one.
			if sys.Net.Alive(victim) && len(l.pendingSuspects()) == 0 {
				// Let the pipeline drain first: virtual time between
				// events means earlier events are long delivered when the
				// crash strikes, so the measured loss is the outage
				// window itself, not a wall-clock scheduling artifact.
				l.settle()
				sys.Net.Crash(victim) //nolint:errcheck // known node
				rep.CrashLog = append(rep.CrashLog, CrashEvent{Victim: victim, At: now})
				recoverAt[victim] = now + cfg.MTTR
				rep.Crashes++
			}
		}
	}
	// Let outstanding detections finish so the run's cost is complete.
	// The partitioned home's own (correct) death declaration is not an
	// injected crash — counting it here would end the wait one real
	// detection early.
	injectedDeaths := func() int {
		n := 0
		for _, d := range l.Sup.Deaths() {
			if cfg.PartitionHomeAfter > 0 && d == "mon" {
				continue
			}
			n++
		}
		return n
	}
	for i := 0; i < 64 && injectedDeaths() < rep.Crashes; i++ {
		sys.Step(cfg.Step)
	}
	if cfg.Replay {
		// With replay on, every driven event is recoverable: keep
		// stepping (migrations replay outage windows, anti-entropy sweeps
		// refill link losses) until the last result lands. The bound is
		// generous — on a loaded machine the operator goroutines may need
		// many settle rounds to drain — but a run whose substrate was
		// destroyed (home-partition scenario) stops making progress, so
		// bail once the count stalls.
		last, stalled := -1, 0
		for i := 0; i < 1000 && l.Task.Results().Len() < rep.Driven && stalled < 50; i++ {
			sys.Step(cfg.Step)
			l.settle()
			if cur := l.Task.Results().Len(); cur == last {
				stalled++
			} else {
				last, stalled = cur, 0
			}
		}
	}
	l.Task.Stop()
	rep.Received = len(l.Task.Results().Drain())
	rep.Deaths = len(l.Sup.Deaths())
	rep.Replayed = sys.ReplayedItems()
	for _, ev := range l.Sup.Events() {
		if ev.Repaired() {
			rep.Repairs++
		}
	}
	// Detection latency pairs each injected crash with the first repair
	// event naming its victim at or after the crash time (deaths the
	// supervisor declares for other reasons — the partitioned home —
	// are not injected crashes and don't enter the latency sample).
	for _, c := range rep.CrashLog {
		for _, ev := range l.Sup.Events() {
			if ev.From == c.Victim && ev.At >= c.At {
				rep.DetectionLatency.Add(float64(ev.At-c.At) / float64(time.Second))
				break
			}
		}
	}
	rep.Traffic = sys.Net.Totals()
	return rep, nil
}
