package workload

import (
	"testing"
)

func shareCfg(mode string) ShareConfig {
	cfg := DefaultShare()
	cfg.Mode = mode
	return cfg
}

func runShare(t *testing.T, cfg ShareConfig) *ShareReport {
	t.Helper()
	lab, err := SetupShare(cfg)
	if err != nil {
		t.Fatalf("SetupShare: %v", err)
	}
	rep, err := lab.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}

// The headline property: sharing deploys far fewer operators than
// independent deployment, and both answer byte-identically.
func TestShareDeploysFewerOperatorsSameAnswers(t *testing.T) {
	shared := runShare(t, shareCfg("shared"))
	unshared := runShare(t, shareCfg("unshared"))

	for _, rep := range []*ShareReport{shared, unshared} {
		if rep.ByteIdenticalSubs != rep.Subs {
			t.Errorf("%s: %d/%d subscriptions byte-identical (completeness %.3f)",
				rep.Mode, rep.ByteIdenticalSubs, rep.Subs, rep.Completeness())
		}
	}
	if shared.Operators >= unshared.Operators {
		t.Errorf("shared deployed %d operators, unshared %d — sharing saved nothing",
			shared.Operators, unshared.Operators)
	}
	if shared.ReusedOps == 0 {
		t.Errorf("shared mode reported zero reused operators")
	}
	if shared.FailedLookups != 0 {
		t.Errorf("shared mode recorded %d failed lookups", shared.FailedLookups)
	}
}

// Exact duplicates of an already-deployed aggregate must resolve to a
// channel on the existing tree's root: no processors at all.
func TestShareExactDuplicateDeploysNothing(t *testing.T) {
	cfg := shareCfg("shared")
	cfg.Subs = 2
	cfg.Sources = 6 // sub 1 = range [0,2): contained, not duplicate
	lab, err := SetupShare(cfg)
	if err != nil {
		t.Fatalf("SetupShare: %v", err)
	}
	defer func() {
		for _, task := range lab.Tasks {
			task.Stop()
		}
	}()
	// Deploy a true duplicate of the seed subscription by hand.
	dupCfg := cfg
	dupCfg.Subs = 1
	if lab.Tasks[0].Reuse == nil || lab.Tasks[0].Reuse.NewOps == 0 {
		t.Fatalf("seed subscription should deploy fresh operators")
	}
	seedOps := lab.Tasks[0].OperatorsDeployed()
	if seedOps == 0 {
		t.Fatalf("seed subscription deployed no operators")
	}
	// Subscription 1 covers sources [0,2), a strict subset: it must graft
	// (reuse partial streams) rather than rebuild its branches.
	sub1 := lab.Tasks[1]
	if sub1.Reuse == nil {
		t.Fatalf("subscription 1 has no reuse result")
	}
	if sub1.Reuse.ReusedOps == 0 {
		t.Errorf("contained subscription reused nothing (new=%d)", sub1.Reuse.NewOps)
	}
	if got, seed := sub1.OperatorsDeployed(), seedOps; got >= seed {
		t.Errorf("contained subscription deployed %d operators, seed %d", got, seed)
	}
}

// Sharing must hold through churn on the shared interiors: crashes and
// graceful leaves of the host carrying shared merge state, with every
// subscription still byte-identical (replay layer on).
func TestShareChurnOnSharedInteriors(t *testing.T) {
	if testing.Short() {
		t.Skip("churn run in -short mode")
	}
	for _, mode := range []string{"crash", "leave", "join"} {
		t.Run(mode, func(t *testing.T) {
			cfg := shareCfg("shared")
			cfg.Events = 64
			switch mode {
			case "crash":
				cfg.CrashEvery = 24
			case "leave":
				cfg.LeaveEvery = 24
			case "join":
				cfg.GrowFrom = 2 // two workers join mid-run
			}
			rep := runShare(t, cfg)
			if mode == "crash" && rep.Crashes == 0 {
				t.Fatalf("schedule injected no crashes")
			}
			if mode == "leave" && rep.Leaves == 0 {
				t.Fatalf("schedule injected no leaves")
			}
			if mode == "join" && rep.Joins != cfg.Workers-cfg.GrowFrom {
				t.Fatalf("schedule admitted %d joiners, want %d", rep.Joins, cfg.Workers-cfg.GrowFrom)
			}
			if rep.ByteIdenticalSubs != rep.Subs {
				t.Errorf("%d/%d subscriptions byte-identical under %s churn (completeness %.3f)",
					rep.ByteIdenticalSubs, rep.Subs, mode, rep.Completeness())
				for _, line := range rep.Timeline {
					t.Logf("timeline: %s", line)
				}
			}
		})
	}
}

// The sliding-range generator must produce the documented population:
// full seed, then lengths cycling 2..S at sliding offsets, all in range.
func TestShareRangeGenerator(t *testing.T) {
	const S = 6
	if r := shareRange(0, S); r.start != 0 || r.end != S {
		t.Fatalf("seed range = %+v, want [0,%d)", r, S)
	}
	lens := map[int]bool{}
	for j := 1; j < 40; j++ {
		r := shareRange(j, S)
		if r.start < 0 || r.end > S || r.end-r.start < 2 {
			t.Fatalf("sub %d range %+v out of bounds", j, r)
		}
		lens[r.end-r.start] = true
	}
	for l := 2; l <= S; l++ {
		if !lens[l] {
			t.Errorf("length %d never generated", l)
		}
	}
}
