package workload

import (
	"strings"
	"testing"
)

// TestChurnGracefulLeaves: the relay host repeatedly leaves gracefully
// and rejoins; the handoff is lossless with zero detection cost — no
// death is ever declared — and the timeline records every departure and
// re-admission.
func TestChurnGracefulLeaves(t *testing.T) {
	for _, det := range []string{"home", "gossip"} {
		t.Run(det, func(t *testing.T) {
			cfg := DefaultChurn()
			cfg.Detector = det
			cfg.Replay = true
			cfg.CrashEvery = 0
			cfg.LeaveEvery = 15
			cfg.Events = 60
			lab, err := SetupChurn(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := lab.Run()
			if err != nil {
				t.Fatal(err)
			}
			if rep.Leaves == 0 {
				t.Fatal("no graceful leaves injected")
			}
			if rep.LeaveRepairs == 0 {
				t.Error("leaves migrated nothing")
			}
			if rep.Deaths != 0 {
				t.Errorf("graceful departures were declared dead %d times", rep.Deaths)
			}
			if rep.Completeness() != 1 {
				t.Errorf("completeness = %.2f, want 1 (handoff must be lossless)", rep.Completeness())
			}
			leaves, rejoins := 0, 0
			for _, e := range rep.Timeline {
				if strings.Contains(e, " leave ") {
					leaves++
				}
				if strings.Contains(e, " rejoin ") {
					rejoins++
				}
			}
			if leaves != rep.Leaves || rejoins == 0 {
				t.Errorf("timeline records %d leaves / %d rejoins, report says %d leaves: %v",
					leaves, rejoins, rep.Leaves, rep.Timeline)
			}
		})
	}
}

// TestChurnLeaveCrashMix: graceful departures interleaved with crashes —
// the two repair paths coexist and the run stays lossless.
func TestChurnLeaveCrashMix(t *testing.T) {
	cfg := DefaultChurn()
	cfg.Detector = "gossip"
	cfg.Replay = true
	cfg.CrashEvery = 20
	cfg.LeaveEvery = 13
	cfg.Events = 80
	lab, err := SetupChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := lab.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Leaves == 0 || rep.Crashes == 0 {
		t.Fatalf("mix did not exercise both paths: %d leaves, %d crashes", rep.Leaves, rep.Crashes)
	}
	if rep.Completeness() != 1 {
		t.Errorf("completeness = %.2f, want 1", rep.Completeness())
	}
}
