package workload

import (
	"fmt"
	"testing"
)

// TestAggFlatVsTreeByteIdentical: same seed, no churn — the tree
// deployment's windowed counts are byte-identical to the flat
// aggregator's, and the tree erases the flat ingest hotspot.
func TestAggFlatVsTreeByteIdentical(t *testing.T) {
	run := func(mode string) *AggReport {
		cfg := DefaultAgg()
		cfg.Mode = mode
		cfg.Events = 64
		lab, err := SetupAgg(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := lab.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	flat, tree := run("flat"), run("tree")
	if flat.Completeness() != 1 || tree.Completeness() != 1 {
		t.Fatalf("completeness flat=%.2f tree=%.2f, want 1/1", flat.Completeness(), tree.Completeness())
	}
	if fmt.Sprint(flat.Records) != fmt.Sprint(tree.Records) {
		t.Errorf("records differ:\n flat: %v\n tree: %v", flat.Records, tree.Records)
	}
	if tree.IngestMax >= flat.IngestMax {
		t.Errorf("tree max ingest %d did not beat flat hotspot %d", tree.IngestMax, flat.IngestMax)
	}
	if tree.IngestRatio() >= flat.IngestRatio() {
		t.Errorf("tree max/mean %.2f did not beat flat %.2f", tree.IngestRatio(), flat.IngestRatio())
	}
}

// TestAggTreeChurnLossless: interior crashes, graceful leaves and
// runtime joins while windows are open — with replay on, every windowed
// count still lands exactly right.
func TestAggTreeChurnLossless(t *testing.T) {
	cfg := DefaultAgg()
	cfg.Events = 96
	cfg.CrashEvery = 24
	cfg.LeaveEvery = 17
	cfg.Workers = 4
	cfg.GrowFrom = 2
	cfg.JoinEvery = 20
	cfg.Replay = true
	lab, err := SetupAgg(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := lab.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashes == 0 || rep.Leaves == 0 || rep.Joins == 0 {
		t.Fatalf("schedule did not fire: %d crashes, %d leaves, %d joins (timeline %v)",
			rep.Crashes, rep.Leaves, rep.Joins, rep.Timeline)
	}
	if rep.Completeness() != 1 {
		t.Errorf("completeness = %.3f (%d/%d correct), want 1; timeline %v",
			rep.Completeness(), rep.CorrectGroups, rep.ExpectedGroups, rep.Timeline)
	}
	if rep.Repairs == 0 {
		t.Error("no supervisor repairs despite crashes")
	}
}

// TestAggTreeCrashWithoutReplayLoses: the same interior crash without
// the replay layer destroys accumulated window state — the measured
// contrast that makes the lossless rows meaningful.
func TestAggTreeCrashWithoutReplayLoses(t *testing.T) {
	cfg := DefaultAgg()
	cfg.Events = 64
	cfg.CrashEvery = 20
	cfg.Replay = false
	lab, err := SetupAgg(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := lab.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashes == 0 {
		t.Fatal("no crashes injected")
	}
	if rep.Completeness() >= 1 {
		t.Errorf("completeness = %.3f with replay off; the crash should have cost state", rep.Completeness())
	}
}

// TestAggConfigValidation rejects nonsense configurations.
func TestAggConfigValidation(t *testing.T) {
	bad := []AggConfig{
		{Sources: 1, Workers: 2, Events: 10, Mode: "tree"},
		{Sources: 4, Workers: 0, Events: 10, Mode: "tree"},
		{Sources: 4, Workers: 2, Events: 10, Mode: "pyramid"},
		{Sources: 4, Workers: 2, Events: 10, Mode: "tree", GrowFrom: 2},
		func() AggConfig { c := DefaultAgg(); c.Detector = "psychic"; return c }(),
	}
	for i, cfg := range bad {
		if _, err := SetupAgg(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}
