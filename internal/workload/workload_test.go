package workload

import (
	"testing"

	"p2pm/internal/filter"
	"p2pm/internal/peer"
	"p2pm/internal/rss"
)

func TestMeteoWorkloadEndToEnd(t *testing.T) {
	sys := peer.MustSystem(peer.DefaultConfig())
	mgr := sys.MustAddPeer("p")
	cfg := DefaultMeteo()
	if err := SetupMeteo(sys, cfg); err != nil {
		t.Fatal(err)
	}
	task, err := mgr.Subscribe(MeteoSubscription(cfg.Clients, cfg.Server))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := RunMeteo(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	task.Stop()
	got := task.Results().Drain()
	if slow == 0 || len(got) != slow {
		t.Errorf("incidents = %d, slow calls = %d", len(got), slow)
	}
}

func TestTelecomWorkload(t *testing.T) {
	sys := peer.MustSystem(peer.DefaultConfig())
	cfg := DefaultTelecom()
	if err := SetupTelecom(sys, cfg); err != nil {
		t.Fatal(err)
	}
	mgr := sys.MustAddPeer("noc")
	// Follow one workflow's Bill steps across all services.
	task, err := mgr.Subscribe(`for $c in outCOM(<p>orchestrator</p>)
where $c.callMethod = "Bill"
return <bill wf="{$c.callId}" svc="{$c.callee}"/>
by publish as channel "billing"`)
	if err != nil {
		t.Fatal(err)
	}
	calls, err := RunTelecom(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if calls != cfg.Workflows*cfg.Steps {
		t.Errorf("calls = %d", calls)
	}
	task.Stop()
	got := task.Results().Drain()
	// One Bill step per workflow (Steps=3, methods rotate P,A,B).
	if len(got) != cfg.Workflows {
		t.Errorf("billing events = %d, want %d", len(got), cfg.Workflows)
	}
}

func TestEdosWorkload(t *testing.T) {
	sys := peer.MustSystem(peer.DefaultConfig())
	cfg := DefaultEdos()
	cfg.Downloads, cfg.Queries = 30, 15
	e, err := SetupEdos(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mgr := sys.MustAddPeer("noc")
	task, err := mgr.Subscribe(e.StatsSubscription("GetPackage"))
	if err != nil {
		t.Fatal(err)
	}
	dl, q, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if dl != 30 || q != 15 {
		t.Errorf("dl=%d q=%d", dl, q)
	}
	task.Stop()
	got := task.Results().Drain()
	if len(got) != dl {
		t.Errorf("download events observed = %d, want %d", len(got), dl)
	}
	for _, it := range got {
		if it.Tree.AttrOr("method", "") != "GetPackage" {
			t.Errorf("event = %s", it.Tree)
		}
	}
}

func TestEdosChurn(t *testing.T) {
	sys := peer.MustSystem(peer.DefaultConfig())
	cfg := DefaultEdos()
	cfg.Downloads, cfg.Queries, cfg.ChurnEvery = 20, 0, 5
	e, err := SetupEdos(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// All mirrors must still be DHT members after bounce churn.
	for _, m := range e.Mirrors() {
		found := false
		for _, n := range sys.Ring.Nodes() {
			if n == m {
				found = true
			}
		}
		if !found {
			t.Errorf("mirror %s lost from ring", m)
		}
	}
}

func TestFeedChurnDeterministic(t *testing.T) {
	a := NewFeedChurn(5, "t", 3)
	b := NewFeedChurn(5, "t", 3)
	for i := 0; i < 20; i++ {
		ka, kb := a.Step(), b.Step()
		if ka != kb {
			t.Fatalf("step %d: %s vs %s", i, ka, kb)
		}
	}
	if len(a.Feed.Entries) != len(b.Feed.Entries) {
		t.Error("feeds diverged")
	}
	// Fetch returns clones.
	snap, _ := a.Fetch()()
	snap.Entries = nil
	if len(a.Feed.Entries) == 0 && len(b.Feed.Entries) != 0 {
		t.Error("Fetch leaked internal state")
	}
}

func TestFeedChurnKinds(t *testing.T) {
	fc := NewFeedChurn(1, "t", 2)
	seen := map[rss.ChangeKind]bool{}
	for i := 0; i < 60; i++ {
		seen[fc.Step()] = true
	}
	if !seen[rss.Added] || !seen[rss.Modified] || !seen[rss.Removed] {
		t.Errorf("kinds seen = %v", seen)
	}
}

func TestFilterGenDeterministicAndWellFormed(t *testing.T) {
	cfg := DefaultFilterGen()
	g1, g2 := NewFilterGen(cfg), NewFilterGen(cfg)
	s1, s2 := g1.Subscriptions(50), g2.Subscriptions(50)
	if len(s1) != 50 || len(s2) != 50 {
		t.Fatal("wrong count")
	}
	for i := range s1 {
		if s1[i].ID != s2[i].ID || len(s1[i].Simple) != len(s2[i].Simple) {
			t.Fatalf("generation not deterministic at %d", i)
		}
	}
	f := filter.New()
	for _, s := range s1 {
		if err := f.Add(s); err != nil {
			t.Fatalf("generated subscription invalid: %v", err)
		}
	}
	docs := g1.Documents(20)
	matches := 0
	for _, d := range docs {
		ids, err := f.Match(d)
		if err != nil {
			t.Fatal(err)
		}
		matches += len(ids)
	}
	t.Logf("matches over 20 docs x 50 subs: %d", matches)
}

func TestFilterGenComplexFraction(t *testing.T) {
	cfg := DefaultFilterGen()
	cfg.ComplexFraction = 1.0
	g := NewFilterGen(cfg)
	for _, s := range g.Subscriptions(20) {
		if len(s.Complex) == 0 {
			t.Fatal("expected complex part on every subscription")
		}
	}
	cfg.ComplexFraction = 0
	g = NewFilterGen(cfg)
	for _, s := range g.Subscriptions(20) {
		if len(s.Complex) != 0 {
			t.Fatal("expected no complex parts")
		}
	}
}

func TestSerializedDocumentsParse(t *testing.T) {
	g := NewFilterGen(DefaultFilterGen())
	for _, raw := range g.SerializedDocuments(10) {
		f := filter.New()
		if err := f.Add(filter.Subscription{ID: "x", Simple: []filter.Cond{{Attr: "a00", Op: 1, Value: "v00"}}}); err != nil {
			t.Fatal(err)
		}
		if _, err := f.MatchSerialized(raw); err != nil {
			t.Fatalf("generated doc unparseable: %v\n%s", err, raw)
		}
	}
}
