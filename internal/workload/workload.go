// Package workload implements the evaluation drivers: the applications
// the paper's introduction motivates P2PM with — telecom Web service
// workflows, the meteo QoS scenario, the Edos content-distribution
// network, RSS feed churn — plus the synthetic subscription/document
// generators the filter benchmarks sweep over.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"p2pm/internal/peer"
	"p2pm/internal/rss"
	"p2pm/internal/xmltree"
)

// MeteoConfig parameterizes the running example of the paper.
type MeteoConfig struct {
	Server    string   // the meteo service host
	Clients   []string // callers
	Calls     int      // total GetTemperature calls
	SlowEvery int      // every k-th call is slow (0 = never)
	SlowBy    time.Duration
	ClockStep time.Duration
}

// DefaultMeteo mirrors the Figure 1 setting.
func DefaultMeteo() MeteoConfig {
	return MeteoConfig{
		Server:    "meteo.com",
		Clients:   []string{"a.com", "b.com"},
		Calls:     20,
		SlowEvery: 4,
		SlowBy:    15 * time.Second,
		ClockStep: 30 * time.Second,
	}
}

// SetupMeteo creates the peers and the GetTemperature service whose
// latency follows the configuration.
func SetupMeteo(sys *peer.System, cfg MeteoConfig) error {
	for _, c := range cfg.Clients {
		if _, err := sys.AddPeer(c); err != nil {
			return err
		}
	}
	server, err := sys.AddPeer(cfg.Server)
	if err != nil {
		return err
	}
	calls := 0
	server.Endpoint().Register("GetTemperature",
		func(*xmltree.Node) (*xmltree.Node, error) {
			return xmltree.ElemText("temp", "21"), nil
		},
		func() time.Duration {
			calls++
			if cfg.SlowEvery > 0 && calls%cfg.SlowEvery == 0 {
				return cfg.SlowBy
			}
			return 100 * time.Millisecond
		})
	return nil
}

// RunMeteo drives the configured number of calls round-robin across the
// clients and returns how many were slow (> 10s, the Figure 1 threshold).
func RunMeteo(sys *peer.System, cfg MeteoConfig) (slow int, err error) {
	clock := sys.Net.Clock()
	for i := 0; i < cfg.Calls; i++ {
		client := sys.Peer(cfg.Clients[i%len(cfg.Clients)])
		if client == nil {
			return slow, fmt.Errorf("workload: unknown client %s", cfg.Clients[i%len(cfg.Clients)])
		}
		if cfg.SlowEvery > 0 && (i+1)%cfg.SlowEvery == 0 {
			slow++
		}
		if _, err := client.Endpoint().Invoke(cfg.Server, "GetTemperature",
			xmltree.ElemText("city", "paris")); err != nil {
			return slow, err
		}
		clock.Advance(cfg.ClockStep)
	}
	return slow, nil
}

// MeteoSubscription returns the Figure 1 subscription text, parameterized
// by the client and server names.
func MeteoSubscription(clients []string, server string) string {
	peers := ""
	for _, c := range clients {
		peers += "<p>http://" + c + "</p>"
	}
	return fmt.Sprintf(`for $c1 in outCOM(%s),
    $c2 in inCOM(<p>http://%s</p>)
let $duration := $c1.responseTimestamp - $c1.callTimestamp
where $duration > 10 and
      $c1.callMethod = "GetTemperature" and
      $c1.callee = "http://%s" and
      $c1.callId = $c2.callId
return <incident type="slowAnswer">
         <client>{$c1.caller}</client>
         <tstamp>{$c2.callTimestamp}</tstamp>
       </incident>
by publish as channel "alertQoS"`, peers, server, server)
}

// TelecomConfig parameterizes the BPEL-style workflow workload: many
// concurrent workflow instances, each a chain of service calls carrying
// the same workflow identifier, producing the "huge volumes of
// notifications" the filter must absorb.
type TelecomConfig struct {
	Seed      int64
	Services  int // number of service peers (svc-0 ... svc-N)
	Workflows int // workflow instances
	Steps     int // calls per workflow
	Methods   []string
	ClockStep time.Duration
}

// DefaultTelecom returns a moderate workflow mix.
func DefaultTelecom() TelecomConfig {
	return TelecomConfig{
		Seed: 7, Services: 4, Workflows: 25, Steps: 3,
		Methods:   []string{"Provision", "Activate", "Bill"},
		ClockStep: time.Second,
	}
}

// SetupTelecom creates the service peers; each hosts every method.
func SetupTelecom(sys *peer.System, cfg TelecomConfig) error {
	for i := 0; i < cfg.Services; i++ {
		p, err := sys.AddPeer(fmt.Sprintf("svc-%d", i))
		if err != nil {
			return err
		}
		for _, m := range cfg.Methods {
			method := m
			p.Endpoint().Register(method, func(params *xmltree.Node) (*xmltree.Node, error) {
				out := xmltree.Elem("ok")
				if params != nil {
					out.SetAttr("wf", params.AttrOr("wf", ""))
				}
				return out, nil
			}, nil)
		}
	}
	_, err := sys.AddPeer("orchestrator")
	return err
}

// RunTelecom executes the workflow instances and returns the total number
// of calls issued.
func RunTelecom(sys *peer.System, cfg TelecomConfig) (int, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	orch := sys.Peer("orchestrator")
	if orch == nil {
		return 0, fmt.Errorf("workload: telecom not set up")
	}
	calls := 0
	for wf := 0; wf < cfg.Workflows; wf++ {
		wfID := fmt.Sprintf("wf-%d", wf)
		for s := 0; s < cfg.Steps; s++ {
			target := fmt.Sprintf("svc-%d", rng.Intn(cfg.Services))
			method := cfg.Methods[s%len(cfg.Methods)]
			params := xmltree.Elem("req")
			params.SetAttr("wf", wfID)
			params.SetAttr("step", fmt.Sprintf("%d", s))
			if _, err := orch.Endpoint().Invoke(target, method, params); err != nil {
				return calls, err
			}
			calls++
			sys.Net.Clock().Advance(cfg.ClockStep)
		}
	}
	return calls, nil
}

// FeedChurn mutates an RSS feed step by step, deterministically.
type FeedChurn struct {
	Feed *rss.Feed
	rng  *rand.Rand
	next int
}

// NewFeedChurn seeds a churning feed with `initial` entries.
func NewFeedChurn(seed int64, title string, initial int) *FeedChurn {
	fc := &FeedChurn{Feed: &rss.Feed{Title: title}, rng: rand.New(rand.NewSource(seed))}
	for i := 0; i < initial; i++ {
		fc.addEntry()
	}
	return fc
}

func (fc *FeedChurn) addEntry() {
	fc.next++
	fc.Feed.Entries = append(fc.Feed.Entries, rss.Entry{
		ID:      fmt.Sprintf("e%d", fc.next),
		Title:   fmt.Sprintf("entry %d", fc.next),
		Content: fmt.Sprintf("content %d", fc.next),
	})
}

// Step applies one random mutation (add, modify or remove) and returns
// its kind.
func (fc *FeedChurn) Step() rss.ChangeKind {
	switch r := fc.rng.Intn(3); {
	case r == 0 || len(fc.Feed.Entries) == 0:
		fc.addEntry()
		return rss.Added
	case r == 1:
		i := fc.rng.Intn(len(fc.Feed.Entries))
		fc.Feed.Entries[i].Title += "'"
		return rss.Modified
	default:
		i := fc.rng.Intn(len(fc.Feed.Entries))
		fc.Feed.Entries = append(fc.Feed.Entries[:i], fc.Feed.Entries[i+1:]...)
		return rss.Removed
	}
}

// Fetch returns a snapshot function suitable for Peer.RegisterFeed.
func (fc *FeedChurn) Fetch() func() (*rss.Feed, error) {
	return func() (*rss.Feed, error) { return fc.Feed.Clone(), nil }
}
