package workload

import (
	"fmt"
	"math/rand"
	"time"

	"p2pm/internal/peer"
	"p2pm/internal/xmltree"
)

// EdosConfig parameterizes the Edos content-sharing workload: a Mandriva
// Linux distribution network where mirrors serve software packages and
// clients download and query them. The paper's deployment had ~10 000
// packages and >100 MB of XML metadata; the scale factor here is explicit
// and the monitoring code paths are identical (statistics about peers and
// usage, e.g. query rate).
type EdosConfig struct {
	Seed      int64
	Mirrors   int
	Clients   int
	Packages  int
	Downloads int // download events to drive
	Queries   int // metadata query events to drive
	// ChurnEvery makes every k-th event preceded by a mirror
	// leaving/rejoining the DHT (0 = no churn).
	ChurnEvery int
	ClockStep  time.Duration
}

// DefaultEdos returns a laptop-scale Edos network.
func DefaultEdos() EdosConfig {
	return EdosConfig{
		Seed: 11, Mirrors: 4, Clients: 8, Packages: 200,
		Downloads: 120, Queries: 60, ChurnEvery: 0,
		ClockStep: 500 * time.Millisecond,
	}
}

// Edos is a running Edos workload.
type Edos struct {
	cfg      EdosConfig
	sys      *peer.System
	rng      *rand.Rand
	packages []string
}

// SetupEdos creates mirrors (serving GetPackage and QueryMetadata) and
// client peers, and generates the package catalogue metadata.
func SetupEdos(sys *peer.System, cfg EdosConfig) (*Edos, error) {
	e := &Edos{cfg: cfg, sys: sys, rng: rand.New(rand.NewSource(cfg.Seed))}
	for i := 0; i < cfg.Packages; i++ {
		e.packages = append(e.packages, fmt.Sprintf("pkg-%04d", i))
	}
	for m := 0; m < cfg.Mirrors; m++ {
		mirror, err := sys.AddPeer(e.MirrorName(m))
		if err != nil {
			return nil, err
		}
		mirror.Endpoint().Register("GetPackage", func(params *xmltree.Node) (*xmltree.Node, error) {
			name := ""
			if params != nil {
				name = params.AttrOr("name", "")
			}
			pkg := xmltree.Elem("package")
			pkg.SetAttr("name", name)
			pkg.SetAttr("size", fmt.Sprintf("%d", 1024+len(name)*37))
			return pkg, nil
		}, nil)
		mirror.Endpoint().Register("QueryMetadata", func(params *xmltree.Node) (*xmltree.Node, error) {
			res := xmltree.Elem("metadata")
			if params != nil {
				res.SetAttr("query", params.AttrOr("q", ""))
			}
			res.Append(xmltree.ElemText("summary", "package metadata"))
			return res, nil
		}, nil)
	}
	for c := 0; c < cfg.Clients; c++ {
		if _, err := sys.AddPeer(e.ClientName(c)); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// MirrorName returns the m-th mirror's peer name.
func (e *Edos) MirrorName(m int) string { return fmt.Sprintf("mirror-%d", m) }

// ClientName returns the c-th client's peer name.
func (e *Edos) ClientName(c int) string { return fmt.Sprintf("edos-client-%d", c) }

// Mirrors lists all mirror names.
func (e *Edos) Mirrors() []string {
	out := make([]string, e.cfg.Mirrors)
	for i := range out {
		out[i] = e.MirrorName(i)
	}
	return out
}

// Run drives the configured downloads and queries, interleaved, with
// optional mirror churn, and returns (downloads, queries) performed.
func (e *Edos) Run() (int, int, error) {
	downloads, queries := 0, 0
	total := e.cfg.Downloads + e.cfg.Queries
	for i := 0; i < total; i++ {
		if e.cfg.ChurnEvery > 0 && i > 0 && i%e.cfg.ChurnEvery == 0 {
			mirror := e.MirrorName(e.rng.Intn(e.cfg.Mirrors))
			// Bounce the mirror off the DHT: leave then rejoin.
			if err := e.sys.Ring.Leave(mirror); err == nil {
				if err := e.sys.Ring.Join(mirror); err != nil {
					return downloads, queries, err
				}
			}
		}
		client := e.sys.Peer(e.ClientName(e.rng.Intn(e.cfg.Clients)))
		mirror := e.MirrorName(e.rng.Intn(e.cfg.Mirrors))
		if downloads < e.cfg.Downloads && (queries >= e.cfg.Queries || e.rng.Intn(total) < e.cfg.Downloads) {
			params := xmltree.Elem("req")
			params.SetAttr("name", e.packages[e.rng.Intn(len(e.packages))])
			if _, err := client.Endpoint().Invoke(mirror, "GetPackage", params); err != nil {
				return downloads, queries, err
			}
			downloads++
		} else {
			params := xmltree.Elem("req")
			params.SetAttr("q", fmt.Sprintf("depends:%s", e.packages[e.rng.Intn(len(e.packages))]))
			if _, err := client.Endpoint().Invoke(mirror, "QueryMetadata", params); err != nil {
				return downloads, queries, err
			}
			queries++
		}
		e.sys.Net.Clock().Advance(e.cfg.ClockStep)
	}
	return downloads, queries, nil
}

// StatsSubscription returns a P2PML subscription that gathers Edos usage
// statistics: every download observed at the given mirrors, tagged by
// mirror — the "statistics about the peers ... and the usage of the
// system (e.g., query rate)" motivation.
func (e *Edos) StatsSubscription(method string) string {
	peers := ""
	for _, m := range e.Mirrors() {
		peers += "<p>" + m + "</p>"
	}
	return fmt.Sprintf(`for $c in inCOM(%s)
where $c.callMethod = %q
return <event mirror="{$c.callee}" method="{$c.callMethod}"/>
by publish as channel "edos-%s"`, peers, method, method)
}
