package workload

import (
	"fmt"
	"strings"
	"testing"
)

// TestAggFnFlatVsTreeByteIdentical: every aggregate function — exact
// monoids and sketches alike — produces byte-identical records from the
// tree deployment and the flat aggregator at the same seed. For the
// sketches this is the monoid property at work: registers and counters
// depend only on the absorbed value multiset, not on how partials split
// and merge along the tree.
func TestAggFnFlatVsTreeByteIdentical(t *testing.T) {
	for _, fn := range []string{"sum", "min", "avg", "set", "distinct", "freq"} {
		t.Run(fn, func(t *testing.T) {
			run := func(mode string) *AggReport {
				cfg := DefaultAgg()
				cfg.Mode = mode
				cfg.Events = 48
				cfg.Fn = fn
				lab, err := SetupAgg(cfg)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := lab.Run()
				if err != nil {
					t.Fatal(err)
				}
				return rep
			}
			flat, tree := run("flat"), run("tree")
			if flat.Completeness() != 1 || tree.Completeness() != 1 {
				t.Fatalf("completeness flat=%.2f tree=%.2f, want 1/1\nflat records: %v",
					flat.Completeness(), tree.Completeness(), flat.Records)
			}
			if fmt.Sprint(flat.Records) != fmt.Sprint(tree.Records) {
				t.Errorf("records differ:\n flat: %v\n tree: %v", flat.Records, tree.Records)
			}
		})
	}
}

// TestAggSketchChurnLossless: HyperLogLog partials crossing a mid-window
// interior crash, repair and migration still merge into exactly the
// records a quiet run produces, and the delivered estimates stay inside
// the 2% accuracy gate against the exact replayed distinct counts.
func TestAggSketchChurnLossless(t *testing.T) {
	for _, fn := range []string{"distinct", "freq"} {
		t.Run(fn, func(t *testing.T) {
			cfg := DefaultAgg()
			cfg.Events = 96
			cfg.Fn = fn
			cfg.Users = 24
			cfg.CrashEvery = 24
			cfg.LeaveEvery = 17
			cfg.Workers = 4
			cfg.GrowFrom = 2
			cfg.JoinEvery = 20
			cfg.Replay = true
			lab, err := SetupAgg(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := lab.Run()
			if err != nil {
				t.Fatal(err)
			}
			if rep.Crashes == 0 || rep.Leaves == 0 || rep.Joins == 0 {
				t.Fatalf("schedule did not fire: %d crashes, %d leaves, %d joins (timeline %v)",
					rep.Crashes, rep.Leaves, rep.Joins, rep.Timeline)
			}
			if rep.Completeness() != 1 {
				t.Errorf("completeness = %.3f (%d/%d correct), want 1; timeline %v",
					rep.Completeness(), rep.CorrectGroups, rep.ExpectedGroups, rep.Timeline)
			}
			if rep.Replayed == 0 {
				t.Error("no items replayed despite interior crashes")
			}
			if fn == "distinct" {
				if rep.SketchGroups != rep.ExpectedGroups {
					t.Errorf("scored %d/%d sketch groups", rep.SketchGroups, rep.ExpectedGroups)
				}
				if rep.MaxRelErr > 0.02 {
					t.Errorf("max rel err %.4f exceeds the 2%% gate", rep.MaxRelErr)
				}
			}
		})
	}
}

// TestAggCountByteCompatible: the generalized pipeline with Fn unset
// drives method Q and emits records containing only key/count/window —
// the exact shape the count-only implementation produced.
func TestAggCountByteCompatible(t *testing.T) {
	cfg := DefaultAgg()
	cfg.Events = 32
	lab, err := SetupAgg(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := lab.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fn != "count" || rep.Completeness() != 1 || len(rep.Records) == 0 {
		t.Fatalf("fn=%q completeness=%.2f records=%d", rep.Fn, rep.Completeness(), len(rep.Records))
	}
	for _, r := range rep.Records {
		if !strings.HasPrefix(r, `<group key=`) || !strings.Contains(r, ` count="`) {
			t.Fatalf("unexpected record shape %q", r)
		}
		if strings.Contains(r, "agg=") {
			t.Fatalf("count record leaked an agg attribute: %q", r)
		}
	}
}

// TestAggFnValidation rejects unknown aggregate functions.
func TestAggFnValidation(t *testing.T) {
	cfg := DefaultAgg()
	cfg.Fn = "median"
	if _, err := SetupAgg(cfg); err == nil {
		t.Error("accepted unknown aggregate fn")
	}
}
