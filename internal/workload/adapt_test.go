package workload

import (
	"testing"
)

// runAdapt is the shared three-mode harness: one scenario config, one
// run per mode.
func runAdapt(t *testing.T, mode string) *AdaptReport {
	t.Helper()
	cfg := DefaultAdapt()
	cfg.Mode = mode
	lab, err := SetupAdapt(cfg)
	if err != nil {
		t.Fatalf("%s setup: %v", mode, err)
	}
	rep, err := lab.Run()
	if err != nil {
		t.Fatalf("%s run: %v", mode, err)
	}
	return rep
}

// TestAdaptStaticTakesTheDamage: under the diurnal+hotspot profile the
// static configuration false-kills delayed-but-alive peers (including
// the slow worker itself) and churns failover repairs for them, while
// still catching the flapper's real crashes.
func TestAdaptStaticTakesTheDamage(t *testing.T) {
	rep := runAdapt(t, "static")
	if rep.FalseKills < 1 {
		t.Errorf("static run false-killed nobody; the scenario has lost its trap (kills %v)", rep.Kills)
	}
	if rep.TrueKills < 1 {
		t.Errorf("static run missed the flapper's real crashes (kills %v)", rep.Kills)
	}
	if rep.Splits != 0 {
		t.Errorf("static run split %d interiors with the controller off", rep.Splits)
	}
	if rep.HealthPeak != 0 {
		t.Errorf("static run accumulated health %d with adaptive off", rep.HealthPeak)
	}
	if rep.Quarantines != 0 || rep.ReplRaises != 0 {
		t.Errorf("static run ran control actions: %d quarantines, %d replication raises",
			rep.Quarantines, rep.ReplRaises)
	}
}

// TestAdaptAdaptiveKillsNobodyFalsely is the headline acceptance: with
// the PR 9 control loops on, the same fault schedule produces zero
// false kills, still catches every real crash, splits the hot interior
// at runtime, and engages both trigger rules — while the published
// records stay byte-identical to the undisturbed flat deployment.
func TestAdaptAdaptiveKillsNobodyFalsely(t *testing.T) {
	flat := runAdapt(t, "flat")
	if len(flat.Records) == 0 {
		t.Fatal("flat baseline produced no records")
	}
	static := runAdapt(t, "static")
	rep := runAdapt(t, "adaptive")

	if rep.FalseKills != 0 {
		t.Errorf("adaptive run false-killed %d peers: %v", rep.FalseKills, rep.Kills)
	}
	if rep.TrueKills < 1 {
		t.Errorf("adaptive run missed the flapper's real crashes (kills %v)", rep.Kills)
	}
	if rep.HealthPeak == 0 {
		t.Error("adaptive run never raised a health score under degraded links")
	}
	if rep.Splits < 1 {
		t.Error("adaptive run never split the hot interior")
	}
	if static.PostRatio() > 0 && rep.PostRatio() > static.PostRatio() {
		t.Errorf("post-split skew %.2f worse than static %.2f", rep.PostRatio(), static.PostRatio())
	}
	if rep.Quarantines < 1 {
		t.Errorf("quarantine rule never engaged on the flapper (events %d)", rep.Quarantines)
	}
	if rep.ReplRaises < 1 {
		t.Error("replication rule never engaged under the death burst")
	}
	found := false
	for _, q := range rep.Quarantined {
		if q == rep.Flapper {
			found = true
		}
	}
	if !found {
		t.Errorf("flapper %s not in the teardown quarantine set %v", rep.Flapper, rep.Quarantined)
	}
	if c := rep.Completeness(flat.Records); c != 1.0 {
		t.Errorf("adaptive completeness %.3f vs flat, want 1.0", c)
	}
	if !rep.Identical(flat.Records) {
		t.Errorf("adaptive records not byte-identical to flat:\n got: %v\nwant: %v",
			rep.Records, flat.Records)
	}
}

// TestAdaptSetupRejectsBadConfigs: the validated constructor surface.
func TestAdaptSetupRejectsBadConfigs(t *testing.T) {
	bad := DefaultAdapt()
	bad.Mode = "chaotic"
	if _, err := SetupAdapt(bad); err == nil {
		t.Error("unknown mode accepted")
	}
	bad = DefaultAdapt()
	bad.Degree = 3
	if _, err := SetupAdapt(bad); err == nil {
		t.Error("degree below the split minimum accepted")
	}
	bad = DefaultAdapt()
	bad.Workers = 1
	if _, err := SetupAdapt(bad); err == nil {
		t.Error("single-worker config accepted (no distinct flapper)")
	}
}
