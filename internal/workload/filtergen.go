package workload

import (
	"fmt"
	"math/rand"

	"p2pm/internal/filter"
	"p2pm/internal/xmltree"
	"p2pm/internal/xpath"
)

// FilterGenConfig parameterizes the synthetic subscription/document
// population for the filter benchmarks (C1–C4): telecom-style alerts with
// a pool of root attributes tested by simple conditions, and payload
// trees probed by tree-pattern queries.
type FilterGenConfig struct {
	Seed int64
	// Attrs is the root-attribute vocabulary size.
	Attrs int
	// Values is the value vocabulary per attribute.
	Values int
	// CondsPerSub is the number of simple conditions per subscription.
	CondsPerSub int
	// ComplexFraction of subscriptions also carry a tree-pattern query.
	ComplexFraction float64
	// PathDepth bounds generated tree-pattern queries.
	PathDepth int
	// PayloadDepth/PayloadFanout shape the generated documents' bodies.
	PayloadDepth, PayloadFanout int
}

// DefaultFilterGen mirrors a busy monitoring feed.
func DefaultFilterGen() FilterGenConfig {
	return FilterGenConfig{
		Seed: 3, Attrs: 20, Values: 10, CondsPerSub: 2,
		ComplexFraction: 0.3, PathDepth: 3,
		PayloadDepth: 3, PayloadFanout: 3,
	}
}

// FilterGen produces deterministic subscription sets and document
// streams.
type FilterGen struct {
	cfg FilterGenConfig
	rng *rand.Rand
}

// NewFilterGen builds a generator.
func NewFilterGen(cfg FilterGenConfig) *FilterGen {
	return &FilterGen{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// payloadLabels is the element vocabulary of generated payloads: a few
// hot labels (every SOAP-ish alert has an envelope/body) plus a long tail
// of operation-specific labels, so tree patterns are selective the way
// real monitoring queries are.
var payloadLabels = func() []string {
	labels := []string{"envelope", "body", "call", "param", "result", "fault", "detail"}
	for i := 0; i < 18; i++ {
		labels = append(labels, fmt.Sprintf("op%02d", i))
	}
	return labels
}()

func (g *FilterGen) attrName(i int) string  { return fmt.Sprintf("a%02d", i) }
func (g *FilterGen) attrValue(i int) string { return fmt.Sprintf("v%02d", i) }

// Subscriptions generates n filter subscriptions over the configured
// vocabulary.
func (g *FilterGen) Subscriptions(n int) []filter.Subscription {
	subs := make([]filter.Subscription, 0, n)
	for i := 0; i < n; i++ {
		var s filter.Subscription
		s.ID = fmt.Sprintf("sub-%05d", i)
		used := map[int]bool{}
		for c := 0; c < g.cfg.CondsPerSub; c++ {
			a := g.rng.Intn(g.cfg.Attrs)
			if used[a] {
				continue
			}
			used[a] = true
			s.Simple = append(s.Simple, filter.Cond{
				Attr:  g.attrName(a),
				Op:    xpath.OpEq,
				Value: g.attrValue(g.rng.Intn(g.cfg.Values)),
			})
		}
		if g.rng.Float64() < g.cfg.ComplexFraction {
			s.Complex = append(s.Complex, g.Query())
		}
		if len(s.Simple) == 0 && len(s.Complex) == 0 {
			s.Simple = append(s.Simple, filter.Cond{Attr: g.attrName(0), Op: xpath.OpEq, Value: g.attrValue(0)})
		}
		subs = append(subs, s)
	}
	return subs
}

// Query generates one linear tree-pattern query over the payload
// vocabulary, optionally with a final-step attribute predicate, e.g.
// //body/op07[@p1 = "x2"].
func (g *FilterGen) Query() *xpath.Path {
	depth := 1 + g.rng.Intn(g.cfg.PathDepth)
	src := ""
	for d := 0; d < depth; d++ {
		if g.rng.Intn(2) == 0 {
			src += "/"
		} else {
			src += "//"
		}
		src += payloadLabels[g.rng.Intn(len(payloadLabels))]
	}
	if g.rng.Intn(3) == 0 {
		src += fmt.Sprintf(`[@p%d = "x%d"]`, g.rng.Intn(3), g.rng.Intn(4))
	}
	if src[0] != '/' {
		src = "/" + src
	}
	return xpath.MustCompile(src)
}

// Document generates one alert document: root attributes drawn from the
// vocabulary plus a random payload tree.
func (g *FilterGen) Document() *xmltree.Node {
	doc := xmltree.Elem(payloadLabels[0])
	nAttrs := 1 + g.rng.Intn(g.cfg.Attrs)
	for i := 0; i < nAttrs; i++ {
		doc.SetAttr(g.attrName(g.rng.Intn(g.cfg.Attrs)), g.attrValue(g.rng.Intn(g.cfg.Values)))
	}
	doc.Append(g.payload(g.cfg.PayloadDepth))
	return doc
}

func (g *FilterGen) payload(depth int) *xmltree.Node {
	n := xmltree.Elem(payloadLabels[g.rng.Intn(len(payloadLabels))])
	for a := 0; a < g.rng.Intn(3); a++ {
		n.SetAttr(fmt.Sprintf("p%d", g.rng.Intn(3)), fmt.Sprintf("x%d", g.rng.Intn(4)))
	}
	if depth <= 0 {
		n.Append(xmltree.Text("x"))
		return n
	}
	for i := 0; i < 1+g.rng.Intn(g.cfg.PayloadFanout); i++ {
		n.Append(g.payload(depth - 1))
	}
	return n
}

// Documents generates a slice of n documents.
func (g *FilterGen) Documents(n int) []*xmltree.Node {
	docs := make([]*xmltree.Node, n)
	for i := range docs {
		docs[i] = g.Document()
	}
	return docs
}

// SerializedDocuments generates n documents in serialized form (for the
// MatchSerialized fast path).
func (g *FilterGen) SerializedDocuments(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = g.Document().String()
	}
	return out
}
