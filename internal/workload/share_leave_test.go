package workload

import (
	"testing"
	"time"
)

// Regression: a graceful leave migrates shared interiors while partials
// are in flight. Before cross-task consumers were re-bound inside
// redeployOperator (rather than a later sweep), the old instance's
// teardown EOS could reach a grafted subscription's merge input first
// and kill it permanently — whole source ranges vanished from every
// window. The failure was timing-sensitive: it needed a loaded runtime
// (here, a large prior run in the same process) to let the old
// operator's goroutine win the race against the repair sweep.
func TestShareLeaveUnderLoadKeepsSharedBranches(t *testing.T) {
	if testing.Short() {
		t.Skip("loaded-runtime churn run in -short mode")
	}
	pre := DefaultShare()
	pre.Mode = "unshared"
	pre.Sources = 12
	pre.Workers = 6
	pre.Subs = 250
	pre.Events = 64
	pre.Window = 24 * time.Second
	runShare(t, pre)

	cfg := DefaultShare()
	cfg.Mode = "shared"
	cfg.Sources = 12
	cfg.Workers = 6
	cfg.Subs = 48
	cfg.Events = 64
	cfg.Window = 24 * time.Second
	cfg.LeaveEvery = 24
	rep := runShare(t, cfg)
	if rep.Leaves == 0 {
		t.Fatalf("schedule injected no leaves")
	}
	if rep.ByteIdenticalSubs != rep.Subs {
		t.Errorf("%d/%d subscriptions byte-identical after leaves (completeness %.3f)",
			rep.ByteIdenticalSubs, rep.Subs, rep.Completeness())
		for _, line := range rep.Mismatches {
			t.Logf("mismatch: %s", line)
		}
		for _, line := range rep.Timeline {
			t.Logf("timeline: %s", line)
		}
	}
}
