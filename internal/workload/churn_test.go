package workload

import (
	"testing"
	"time"
)

func TestChurnBaselineIsComplete(t *testing.T) {
	cfg := DefaultChurn()
	cfg.Events = 20
	cfg.CrashEvery = 0 // no churn
	lab, err := SetupChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := lab.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completeness() != 1 {
		t.Errorf("baseline completeness = %.2f, want 1.0 (%d/%d)", rep.Completeness(), rep.Received, rep.Driven)
	}
	if rep.Crashes != 0 || rep.Deaths != 0 {
		t.Errorf("baseline saw churn: %+v", rep)
	}
}

func TestChurnMigratesRelayAndSurvives(t *testing.T) {
	cfg := DefaultChurn()
	cfg.Events = 40
	cfg.CrashEvery = 12
	cfg.MTTR = 8 * time.Second
	lab, err := SetupChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := lab.RelayHost()
	if start != "w0" {
		t.Fatalf("relay starts at %q, want w0", start)
	}
	rep, err := lab.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashes == 0 || rep.Deaths != rep.Crashes {
		t.Fatalf("crashes=%d deaths=%d, want every crash detected", rep.Crashes, rep.Deaths)
	}
	if rep.Repairs < rep.Crashes {
		t.Errorf("repairs=%d < crashes=%d", rep.Repairs, rep.Crashes)
	}
	if lab.RelayHost() == start {
		t.Errorf("relay never migrated off %s", start)
	}
	// Events driven during outage windows are lost; everything else must
	// arrive.
	if rep.Completeness() <= 0.4 || rep.Completeness() >= 1 {
		t.Errorf("completeness = %.2f, want in (0.4, 1): outage loss only (%d/%d)", rep.Completeness(), rep.Received, rep.Driven)
	}
	if rep.DetectionLatency.N() != rep.Deaths {
		t.Errorf("latency samples = %d, want %d", rep.DetectionLatency.N(), rep.Deaths)
	}
	if rep.DetectionLatency.Mean() <= 0 {
		t.Errorf("detection latency mean = %v", rep.DetectionLatency.Mean())
	}
	if rep.Traffic.Dropped == 0 {
		t.Error("churn should drop messages on dead links")
	}
	if cfg.Workers >= 2 && rep.Received == 0 {
		t.Error("no results at all survived churn")
	}
}

func TestChurnConfigValidation(t *testing.T) {
	cfg := DefaultChurn()
	cfg.Workers = 1
	if _, err := SetupChurn(cfg); err == nil {
		t.Error("single-worker pool accepted")
	}
}
