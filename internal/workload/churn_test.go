package workload

import (
	"testing"
	"time"
)

func TestChurnBaselineIsComplete(t *testing.T) {
	cfg := DefaultChurn()
	cfg.Events = 20
	cfg.CrashEvery = 0 // no churn
	lab, err := SetupChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := lab.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completeness() != 1 {
		t.Errorf("baseline completeness = %.2f, want 1.0 (%d/%d)", rep.Completeness(), rep.Received, rep.Driven)
	}
	if rep.Crashes != 0 || rep.Deaths != 0 {
		t.Errorf("baseline saw churn: %+v", rep)
	}
}

func TestChurnMigratesRelayAndSurvives(t *testing.T) {
	cfg := DefaultChurn()
	cfg.Events = 40
	cfg.CrashEvery = 12
	cfg.MTTR = 8 * time.Second
	lab, err := SetupChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := lab.RelayHost()
	if start != "w0" {
		t.Fatalf("relay starts at %q, want w0", start)
	}
	rep, err := lab.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashes == 0 || rep.Deaths != rep.Crashes {
		t.Fatalf("crashes=%d deaths=%d, want every crash detected", rep.Crashes, rep.Deaths)
	}
	if rep.Repairs < rep.Crashes {
		t.Errorf("repairs=%d < crashes=%d", rep.Repairs, rep.Crashes)
	}
	if lab.RelayHost() == start {
		t.Errorf("relay never migrated off %s", start)
	}
	// Events driven during outage windows are lost; everything else must
	// arrive.
	if rep.Completeness() <= 0.4 || rep.Completeness() >= 1 {
		t.Errorf("completeness = %.2f, want in (0.4, 1): outage loss only (%d/%d)", rep.Completeness(), rep.Received, rep.Driven)
	}
	if rep.DetectionLatency.N() != rep.Deaths {
		t.Errorf("latency samples = %d, want %d", rep.DetectionLatency.N(), rep.Deaths)
	}
	if rep.DetectionLatency.Mean() <= 0 {
		t.Errorf("detection latency mean = %v", rep.DetectionLatency.Mean())
	}
	if rep.Traffic.Dropped == 0 {
		t.Error("churn should drop messages on dead links")
	}
	if cfg.Workers >= 2 && rep.Received == 0 {
		t.Error("no results at all survived churn")
	}
}

func TestChurnConfigValidation(t *testing.T) {
	cfg := DefaultChurn()
	cfg.Workers = 1
	if _, err := SetupChurn(cfg); err == nil {
		t.Error("single-worker pool accepted")
	}
}

// TestChurnGossipDetectorLossless: the gossip detector mode reaches the
// same replay-on completeness as home mode under the same churn.
func TestChurnGossipDetectorLossless(t *testing.T) {
	cfg := DefaultChurn()
	cfg.Events = 40
	cfg.CrashEvery = 12
	cfg.Replay = true
	cfg.Detector = "gossip"
	lab, err := SetupChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := lab.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashes == 0 {
		t.Fatal("no crashes injected — the schedule never fired")
	}
	if rep.Deaths != rep.Crashes {
		t.Errorf("deaths = %d, crashes = %d: gossip missed (or invented) a death", rep.Deaths, rep.Crashes)
	}
	if rep.Completeness() != 1 {
		t.Errorf("completeness = %.2f, want 1.0 (%d/%d, replayed %d)",
			rep.Completeness(), rep.Received, rep.Driven, rep.Replayed)
	}
	if rep.Replayed == 0 {
		t.Error("nothing replayed — recovery was luck, not retransmission")
	}
}

// TestChurnHomePartitionSurvivability: isolate the monitor peer, then
// crash the relay. Gossip mode stays lossless; home mode goes blind and
// demonstrably loses traffic.
func TestChurnHomePartitionSurvivability(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: two full survivability runs; covered by the matrix job")
	}
	run := func(detector string) *ChurnReport {
		cfg := DefaultChurn()
		cfg.Events = 40
		cfg.CrashEvery = 12
		cfg.Replay = true
		cfg.Detector = detector
		cfg.PartitionHomeAfter = 5
		lab, err := SetupChurn(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := lab.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	g := run("gossip")
	if g.Crashes == 0 {
		t.Error("gossip: no relay crash was injected after the partition")
	}
	if g.Completeness() != 1 {
		t.Errorf("gossip: completeness = %.2f, want 1.0 despite the partitioned home (%d/%d)",
			g.Completeness(), g.Received, g.Driven)
	}
	if g.Repairs < g.Crashes {
		t.Errorf("gossip: repairs = %d < crashes = %d", g.Repairs, g.Crashes)
	}
	h := run("home")
	if h.Completeness() >= 1 {
		t.Errorf("home: completeness = %.2f; a partitioned home detector should lose traffic — the blindness gossip removes", h.Completeness())
	}
}
