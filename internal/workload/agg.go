package workload

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"p2pm/internal/aggtree"
	"p2pm/internal/algebra"
	"p2pm/internal/monoid"
	"p2pm/internal/peer"
	"p2pm/internal/simnet"
	"p2pm/internal/xmltree"
)

// AggConfig parameterizes the aggregate-query scenario: S monitored
// source peers feed a windowed group-by statistic (per-source call
// rates, the Edos motivation) that is aggregated either flat — one Group
// operator ingesting every stream, the O(n) hotspot — or as a DHT-routed
// partial/merge tree (Mode "tree"), while churn, graceful leaves and
// runtime joins reshape the merge-host pool. Completeness is measured
// per windowed group, against the deterministic expectation replayed
// from the drive schedule through the same aggregate monoid.
type AggConfig struct {
	Seed    int64
	Sources int // monitored source peers s0..sS-1
	Workers int // merge-host pool w0..wW-1
	Events  int // client calls, driven round-robin across the sources
	// Mode selects the deployment: "flat" (single Group aggregator) or
	// "tree" (in-network aggregation, docs/AGGREGATION.md).
	Mode string
	// Degree is the tree fan-in bound (tree mode; default 3).
	Degree int
	// Fn selects the aggregate function: "" or "count" (the exact
	// default), or any registered monoid — sum, min, max, avg, set,
	// distinct (HyperLogLog), freq (Count-Min). Value-consuming
	// functions aggregate the per-call value the drive encodes as the
	// invoked method name (the alert's callMethod attribute).
	Fn string
	// Users sizes the value universe for value-consuming functions:
	// event i carries value 1 + (i*7919 mod Users). 0 defaults to 24 —
	// within the freq monoid's exact candidate capacity, so Count-Min
	// runs score byte-exactly too.
	Users int
	// Window is the tumbling window; 0 defaults to 8×Step. Keep it a
	// multiple of Step so virtual event times land inside windows.
	Window time.Duration
	// Step is the virtual time between driven events.
	Step time.Duration
	// CrashEvery crashes the current aggregation host — the first tree
	// interior's host, or the flat aggregator's — every k events.
	CrashEvery int
	// LeaveEvery makes the current aggregation host gracefully leave
	// every k events (rejoining after MTTR via the membership protocol).
	LeaveEvery int
	// MTTR is the downtime before a crashed or departed host returns.
	MTTR time.Duration
	// HeartbeatInterval / Suspicion configure the failure detector.
	HeartbeatInterval time.Duration
	Suspicion         time.Duration
	// Replay enables the lossless layer (buffers, cursors, checkpoints).
	Replay             bool
	ReplayBuffer       int
	CheckpointInterval time.Duration
	// Detector is "home" or "gossip" (default gossip — the decentralized
	// detection the tree's decentralized aggregation pairs with).
	Detector string
	// GrowFrom, when in [1, Workers), starts with that many workers; the
	// rest join at runtime (tree interiors re-parent onto new DHT
	// owners). 0 pre-registers the whole pool.
	GrowFrom int
	// JoinEvery admits one pending worker every N events (0 with
	// GrowFrom set spreads the joins evenly).
	JoinEvery int
}

// DefaultAgg returns a moderate aggregate-query scenario.
func DefaultAgg() AggConfig {
	return AggConfig{
		Seed: 1, Sources: 6, Workers: 3, Events: 96, Mode: "tree", Degree: 3,
		Step: time.Second, MTTR: 10 * time.Second,
		HeartbeatInterval: time.Second, Suspicion: 2 * time.Second,
		Detector: "gossip",
	}
}

// AggReport summarizes one aggregate-query run.
type AggReport struct {
	Fn             string // aggregate function the run deployed
	Driven         int
	Windows        int // distinct windows the schedule spans
	ExpectedGroups int // (window, key) records a lossless run emits
	CorrectGroups  int // emitted records matching the expectation exactly
	ResultGroups   int // records actually emitted
	Crashes        int
	Leaves         int
	Deaths         int
	Repairs        int
	// LeaveRepairs counts migrations the graceful-leave handoffs took
	// (they bypass the supervisor, so Repairs does not include them).
	LeaveRepairs int
	Joins        int
	Replayed     uint64
	// Records holds the emitted result records, serialized and sorted —
	// the byte-identity artifact X4 compares between tree and flat runs.
	Records []string
	// SketchGroups / MaxRelErr / MeanRelErr score distinct-count runs:
	// each delivered HyperLogLog estimate against the exact per-group
	// distinct count replayed from the drive schedule. Sketch error is
	// deterministic here (the registers depend only on the value set),
	// so the accuracy gate is reproducible, not flaky.
	SketchGroups int
	MaxRelErr    float64
	MeanRelErr   float64
	// Ingest is the per-peer operator ingest (items consumed by plan
	// operators hosted there) over the candidate aggregation hosts —
	// every source and every worker, zeros included: the denominator of
	// the hotspot measure.
	Ingest     map[string]uint64
	IngestMax  uint64
	IngestMean float64
	Timeline   []string
	Traffic    simnet.Totals
}

// Completeness is the fraction of expected windowed groups that arrived
// with exactly the right record.
func (r *AggReport) Completeness() float64 {
	if r.ExpectedGroups == 0 {
		return 1
	}
	return float64(r.CorrectGroups) / float64(r.ExpectedGroups)
}

// IngestRatio is max/mean per-peer ingest — the hotspot factor. A flat
// aggregator concentrates everything on one host (ratio ~ pool size); a
// degree-d tree bounds every host's fan-in.
func (r *AggReport) IngestRatio() float64 {
	if r.IngestMean == 0 {
		return 0
	}
	return float64(r.IngestMax) / r.IngestMean
}

// AggLab is one assembled aggregate-query scenario.
type AggLab struct {
	Sys  *peer.System
	Task *peer.Task
	Sup  *peer.Supervisor
	cfg  AggConfig

	agg   monoid.Monoid // the deployed aggregate (count when Fn is "")
	sched *schedRunner
}

// SetupAgg builds the scenario: sources host the monitored service and
// its ws-in alerter, the aggregation (flat Group at w0, or the planner's
// tree with interiors DHT-routed across the worker pool) publishes at
// mgr, and a supervisor watches everything.
func SetupAgg(cfg AggConfig) (*AggLab, error) {
	if cfg.Sources < 2 || cfg.Workers < 1 {
		return nil, fmt.Errorf("workload: agg needs >= 2 sources and >= 1 worker (got %d/%d)", cfg.Sources, cfg.Workers)
	}
	switch cfg.Mode {
	case "flat", "tree":
	default:
		return nil, fmt.Errorf("workload: unknown agg mode %q (want flat or tree)", cfg.Mode)
	}
	fn := cfg.Fn
	if fn == "count" {
		fn = ""
	}
	agg, ok := monoid.Lookup(fn)
	if !ok {
		return nil, fmt.Errorf("workload: unknown aggregate %q (have count, %s)", cfg.Fn, strings.Join(monoid.Names(), ", "))
	}
	if cfg.Users <= 0 {
		cfg.Users = 24
	}
	if cfg.Degree <= 1 {
		cfg.Degree = 3
	}
	if cfg.Step <= 0 {
		cfg.Step = time.Second
	}
	if cfg.Window <= 0 {
		cfg.Window = 8 * cfg.Step
	}
	startWorkers := cfg.Workers
	if cfg.GrowFrom > 0 {
		if cfg.GrowFrom >= cfg.Workers {
			return nil, fmt.Errorf("workload: GrowFrom %d out of range [1, %d)", cfg.GrowFrom, cfg.Workers)
		}
		startWorkers = cfg.GrowFrom
	}

	pc := peer.DefaultConfig()
	pc.Seed = cfg.Seed
	if cfg.Mode == "tree" {
		pc.Agg.Degree = cfg.Degree
	}
	if cfg.Replay {
		pc.Replay.Buffer = cfg.ReplayBuffer
		if pc.Replay.Buffer <= 0 {
			pc.Replay.Buffer = 4096
		}
		pc.Replay.CheckpointInterval = cfg.CheckpointInterval
		if pc.Replay.CheckpointInterval <= 0 {
			pc.Replay.CheckpointInterval = 2 * cfg.HeartbeatInterval
		}
		if pc.Replay.CheckpointInterval <= 0 {
			pc.Replay.CheckpointInterval = 2 * time.Second
		}
	}
	sys, err := peer.NewSystem(pc)
	if err != nil {
		return nil, err
	}
	mgr, err := sys.AddPeer("mgr")
	if err != nil {
		return nil, err
	}
	for _, name := range []string{"c.com", "mon"} {
		if _, err := sys.AddPeer(name); err != nil {
			return nil, err
		}
	}
	echo := func(*xmltree.Node) (*xmltree.Node, error) {
		return xmltree.Elem("ok"), nil
	}
	var branches []*algebra.Node
	for i := 0; i < cfg.Sources; i++ {
		name := fmt.Sprintf("s%d", i)
		sp, err := sys.AddPeer(name)
		if err != nil {
			return nil, err
		}
		sp.Endpoint().Register("Q", echo, nil)
		if agg.NeedsValue() {
			// Value-consuming functions encode the per-call value as the
			// invoked method name, so the ws-in alert carries it in
			// callMethod without any new plumbing.
			for u := 1; u <= cfg.Users; u++ {
				sp.Endpoint().Register(strconv.Itoa(u), echo, nil)
			}
		}
		branches = append(branches, algebra.NewAlerter("inCOM", "ws-in", name, "e", nil))
	}
	for i := 0; i < startWorkers; i++ {
		if _, err := sys.AddPeer(fmt.Sprintf("w%d", i)); err != nil {
			return nil, err
		}
	}
	// Merge operators belong on the worker pool: sources, client,
	// manager and monitor are load-biased against failover placement and
	// excluded from DHT-routed interior placement.
	for _, busy := range []string{"mgr", "c.com", "mon"} {
		sys.Net.AddLoad(busy, 1000)
	}
	for i := 0; i < cfg.Sources; i++ {
		sys.Net.AddLoad(fmt.Sprintf("s%d", i), 1000)
	}
	// DHT-routed interiors stay on the worker pool — and off w0, the
	// Final root's host, when the pool allows it: stacking the root and
	// an interior on one peer would re-create a mini-hotspot.
	sys.SetAggHosts(func(name string) bool {
		if !strings.HasPrefix(name, "w") {
			return false
		}
		return cfg.Workers == 1 || name != "w0"
	})

	spec := &algebra.GroupSpec{KeyAttr: "callee", Window: cfg.Window.String(), Fn: fn}
	if agg.NeedsValue() {
		spec.ValueAttr = "callMethod"
	}
	union := &algebra.Node{Op: algebra.OpUnion, Peer: "w0", Inputs: branches, Schema: []string{"e"}}
	group := &algebra.Node{
		Op: algebra.OpGroup, Peer: "w0", Inputs: []*algebra.Node{union},
		Schema: []string{"e"},
		Group:  spec,
	}
	plan := &algebra.Node{
		Op: algebra.OpPublish, Peer: "mgr", Inputs: []*algebra.Node{group},
		Schema: []string{"e"}, Publish: &algebra.PublishSpec{ChannelID: "aggstats"},
	}
	task, err := mgr.DeployPlan(plan)
	if err != nil {
		return nil, err
	}
	lab := &AggLab{Sys: sys, Task: task, cfg: cfg, agg: agg, sched: newSchedRunner(sys)}
	for i := startWorkers; i < cfg.Workers; i++ {
		lab.sched.pending = append(lab.sched.pending, fmt.Sprintf("w%d", i))
	}
	switch cfg.Detector {
	case "", "gossip":
		lab.Sup = sys.StartGossipSupervisor(peer.GossipOptions{
			Seed: cfg.Seed, ProbeInterval: cfg.HeartbeatInterval, Suspicion: cfg.Suspicion,
		})
	case "home":
		lab.Sup = sys.StartSupervisor("mon", peer.DetectorOptions{
			Interval: cfg.HeartbeatInterval, Suspicion: cfg.Suspicion,
		})
	default:
		return nil, fmt.Errorf("workload: unknown detector mode %q (want home or gossip)", cfg.Detector)
	}
	lab.sched.attach(lab.Sup)
	return lab, nil
}

// AggHost returns the peer currently hosting the crash-schedule target:
// the first DHT-routed interior in tree mode (the flat aggregator, or
// the Final root, otherwise).
func (l *AggLab) AggHost() string {
	if ins := aggtree.Interiors(l.Task.Plan); len(ins) > 0 {
		return ins[0].Peer
	}
	host := ""
	l.Task.Plan.Walk(func(n *algebra.Node) {
		switch n.Op {
		case algebra.OpGroup, algebra.OpMergeAgg:
			host = n.Peer
		}
	})
	return host
}

// settle waits (bounded) until the task's operators stop consuming, so
// each virtual Step sees processed state.
func (l *AggLab) settle() {
	last, stable := uint64(0), 0
	for i := 0; i < 2000 && stable < 3; i++ {
		cur := l.Task.ItemsProcessed()
		if cur == last {
			stable++
		} else {
			stable, last = 0, cur
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// value returns the per-call value event i carries (the invoked method
// name) in value-consuming runs.
func (l *AggLab) value(i int) string {
	return strconv.Itoa(1 + (i*7919)%l.cfg.Users)
}

// expected replays the drive schedule — event i calls source i mod S at
// virtual time i×Step carrying value(i) — through the same monoid the
// deployment runs, producing per-(window|key) the exact record a
// lossless run emits, plus the true distinct-value count per group (the
// accuracy reference for sketch estimates). Replaying the monoid itself
// keeps the expectation byte-exact even for sketches: HLL registers and
// Count-Min cells depend only on the absorbed value multiset, never on
// arrival order or partial/merge splits.
func (l *AggLab) expected() (map[string]*xmltree.Node, map[string]int) {
	states := make(map[string]monoid.State)
	windows := make(map[string]int64)
	keys := make(map[string]string)
	exact := make(map[string]map[string]bool)
	for i := 0; i < l.cfg.Events; i++ {
		w := int64(time.Duration(i) * l.cfg.Step / l.cfg.Window)
		key := fmt.Sprintf("http://s%d", i%l.cfg.Sources)
		gk := fmt.Sprintf("%d|%s", w, key)
		st := states[gk]
		if st == nil {
			st = l.agg.Zero()
			states[gk] = st
			windows[gk], keys[gk] = w, key
			exact[gk] = make(map[string]bool)
		}
		val := ""
		if l.agg.NeedsValue() {
			val = l.value(i)
			exact[gk][val] = true
		}
		st.Absorb(val) //nolint:errcheck // schedule values are well-formed
	}
	recs := make(map[string]*xmltree.Node, len(states))
	for gk, st := range states {
		n := xmltree.Elem("group")
		n.SetAttr("key", keys[gk])
		st.Final(func(a, v string) { n.SetAttr(a, v) })
		n.SetAttr("window", strconv.FormatInt(windows[gk], 10))
		recs[gk] = n
	}
	distinct := make(map[string]int, len(exact))
	for gk, vals := range exact {
		distinct[gk] = len(vals)
	}
	return recs, distinct
}

// Run drives the events while injecting the crash/leave/join schedules,
// settles the detection and replay machinery, stops the task and scores
// the emitted windowed records against the schedule's expectation.
func (l *AggLab) Run() (*AggReport, error) {
	cfg := l.cfg
	sys, client := l.Sys, l.Sys.Peer("c.com")
	rep := &AggReport{Fn: l.agg.Name()}
	r := l.sched

	err := r.run(schedule{
		Events: cfg.Events, Step: cfg.Step, MTTR: cfg.MTTR,
		CrashEvery: cfg.CrashEvery, LeaveEvery: cfg.LeaveEvery, JoinEvery: cfg.JoinEvery,
		SettleBeforeStep: true,
		Drive: func(i int) error {
			target := fmt.Sprintf("s%d", i%cfg.Sources)
			method := "Q"
			if l.agg.NeedsValue() {
				method = l.value(i)
			}
			if _, err := client.Endpoint().Invoke(target, method, nil); err != nil {
				return fmt.Errorf("workload: driving event %d: %w", i, err)
			}
			return nil
		},
		Settle: l.settle,
		Victim: l.AggHost,
		// Only workers crash or leave (an interior that fell back onto a
		// biased peer would take its alerter down with it).
		VictimOK: func(v string) bool { return strings.HasPrefix(v, "w") },
	})
	if err != nil {
		return nil, err
	}
	rep.Driven = r.driven
	rep.Crashes = r.crashes
	rep.Leaves = r.leaves
	rep.Joins = r.joins
	rep.LeaveRepairs = r.leaveRepairs

	// Let outstanding detections and repairs finish, then give the
	// anti-entropy sweep a few rounds to refill any remaining losses.
	for i := 0; i < 64 && len(r.pendingSuspects()) > 0; i++ {
		sys.Step(cfg.Step)
	}
	for i := 0; i < 8; i++ {
		l.settle()
		sys.Step(cfg.Step)
	}
	l.settle()

	// Ingest snapshot before teardown, over the candidate host set —
	// read from the System.AggLoad stats surface (the same gauge the
	// re-chunking controller consumes), filtered to this task.
	byPeer := make(map[string]uint64)
	for _, e := range sys.AggLoad() {
		if e.Task == l.Task.ID {
			byPeer[e.Peer] += e.Items
		}
	}
	rep.Ingest = make(map[string]uint64)
	var total uint64
	hosts := 0
	addHost := func(name string) {
		rep.Ingest[name] = byPeer[name]
		total += byPeer[name]
		if byPeer[name] > rep.IngestMax {
			rep.IngestMax = byPeer[name]
		}
		hosts++
	}
	for i := 0; i < cfg.Sources; i++ {
		addHost(fmt.Sprintf("s%d", i))
	}
	for i := 0; i < cfg.Workers; i++ {
		addHost(fmt.Sprintf("w%d", i))
	}
	if hosts > 0 {
		rep.IngestMean = float64(total) / float64(hosts)
	}

	l.Task.Stop()
	exp, exactDistinct := l.expected()
	rep.Windows = func() int {
		seen := map[string]bool{}
		for k := range exp {
			seen[strings.SplitN(k, "|", 2)[0]] = true
		}
		return len(seen)
	}()
	rep.ExpectedGroups = len(exp)
	gotCounts := make(map[string]int)
	gotRecs := make(map[string][]*xmltree.Node)
	for _, it := range l.Task.Results().Drain() {
		if it.Tree.Label != "group" {
			continue
		}
		rep.ResultGroups++
		k := it.Tree.AttrOr("window", "?") + "|" + it.Tree.AttrOr("key", "?")
		if l.agg.NeedsValue() {
			gotRecs[k] = append(gotRecs[k], it.Tree)
		} else {
			// Counts are commutative deltas: a lossy run may split a
			// group across emissions, and the split still scores correct
			// when the total survives.
			n := 0
			fmt.Sscanf(it.Tree.AttrOr("count", "0"), "%d", &n)
			gotCounts[k] += n
		}
		rep.Records = append(rep.Records, it.Tree.String())
	}
	sort.Strings(rep.Records)
	for gk, want := range exp {
		if l.agg.NeedsValue() {
			rs := gotRecs[gk]
			if len(rs) == 1 && rs[0].String() == want.String() {
				rep.CorrectGroups++
			}
		} else if n, err := strconv.Atoi(want.AttrOr("count", "0")); err == nil && gotCounts[gk] == n {
			rep.CorrectGroups++
		}
	}
	if l.agg.Name() == "distinct" {
		var sum float64
		for gk, truth := range exactDistinct {
			rs := gotRecs[gk]
			if len(rs) != 1 || truth == 0 {
				continue
			}
			est, err := strconv.ParseFloat(rs[0].AttrOr("distinct", ""), 64)
			if err != nil {
				continue
			}
			re := math.Abs(est-float64(truth)) / float64(truth)
			rep.SketchGroups++
			sum += re
			if re > rep.MaxRelErr {
				rep.MaxRelErr = re
			}
		}
		if rep.SketchGroups > 0 {
			rep.MeanRelErr = sum / float64(rep.SketchGroups)
		}
	}
	rep.Deaths = len(l.Sup.Deaths())
	for _, ev := range l.Sup.Events() {
		if ev.Repaired() {
			rep.Repairs++
		}
	}
	rep.Replayed = sys.ReplayedItems()
	rep.Timeline = append([]string(nil), r.timeline...)
	rep.Traffic = sys.Net.Totals()
	return rep, nil
}
