package workload

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"p2pm/internal/aggtree"
	"p2pm/internal/algebra"
	"p2pm/internal/peer"
	"p2pm/internal/simnet"
	"p2pm/internal/xmltree"
)

// AggConfig parameterizes the aggregate-query scenario: S monitored
// source peers feed a windowed group-by-count statistic (per-source call
// rates, the Edos motivation) that is aggregated either flat — one Group
// operator ingesting every stream, the O(n) hotspot — or as a DHT-routed
// partial/merge tree (Mode "tree"), while churn, graceful leaves and
// runtime joins reshape the merge-host pool. Completeness is measured
// per windowed count, against the deterministic expectation computed
// from the drive schedule.
type AggConfig struct {
	Seed    int64
	Sources int // monitored source peers s0..sS-1
	Workers int // merge-host pool w0..wW-1
	Events  int // client calls, driven round-robin across the sources
	// Mode selects the deployment: "flat" (single Group aggregator) or
	// "tree" (in-network aggregation, docs/AGGREGATION.md).
	Mode string
	// Degree is the tree fan-in bound (tree mode; default 3).
	Degree int
	// Window is the tumbling window; 0 defaults to 8×Step. Keep it a
	// multiple of Step so virtual event times land inside windows.
	Window time.Duration
	// Step is the virtual time between driven events.
	Step time.Duration
	// CrashEvery crashes the current aggregation host — the first tree
	// interior's host, or the flat aggregator's — every k events.
	CrashEvery int
	// LeaveEvery makes the current aggregation host gracefully leave
	// every k events (rejoining after MTTR via the membership protocol).
	LeaveEvery int
	// MTTR is the downtime before a crashed or departed host returns.
	MTTR time.Duration
	// HeartbeatInterval / Suspicion configure the failure detector.
	HeartbeatInterval time.Duration
	Suspicion         time.Duration
	// Replay enables the lossless layer (buffers, cursors, checkpoints).
	Replay             bool
	ReplayBuffer       int
	CheckpointInterval time.Duration
	// Detector is "home" or "gossip" (default gossip — the decentralized
	// detection the tree's decentralized aggregation pairs with).
	Detector string
	// GrowFrom, when in [1, Workers), starts with that many workers; the
	// rest join at runtime (tree interiors re-parent onto new DHT
	// owners). 0 pre-registers the whole pool.
	GrowFrom int
	// JoinEvery admits one pending worker every N events (0 with
	// GrowFrom set spreads the joins evenly).
	JoinEvery int
}

// DefaultAgg returns a moderate aggregate-query scenario.
func DefaultAgg() AggConfig {
	return AggConfig{
		Seed: 1, Sources: 6, Workers: 3, Events: 96, Mode: "tree", Degree: 3,
		Step: time.Second, MTTR: 10 * time.Second,
		HeartbeatInterval: time.Second, Suspicion: 2 * time.Second,
		Detector: "gossip",
	}
}

// AggReport summarizes one aggregate-query run.
type AggReport struct {
	Driven         int
	Windows        int // distinct windows the schedule spans
	ExpectedGroups int // (window, key) records a lossless run emits
	CorrectGroups  int // emitted records matching the expectation exactly
	ResultGroups   int // records actually emitted
	Crashes        int
	Leaves         int
	Deaths         int
	Repairs        int
	// LeaveRepairs counts migrations the graceful-leave handoffs took
	// (they bypass the supervisor, so Repairs does not include them).
	LeaveRepairs int
	Joins        int
	Replayed     uint64
	// Records holds the emitted result records, serialized and sorted —
	// the byte-identity artifact X4 compares between tree and flat runs.
	Records []string
	// Ingest is the per-peer operator ingest (items consumed by plan
	// operators hosted there) over the candidate aggregation hosts —
	// every source and every worker, zeros included: the denominator of
	// the hotspot measure.
	Ingest     map[string]uint64
	IngestMax  uint64
	IngestMean float64
	Timeline   []string
	Traffic    simnet.Totals
}

// Completeness is the fraction of expected windowed counts that arrived
// with exactly the right value.
func (r *AggReport) Completeness() float64 {
	if r.ExpectedGroups == 0 {
		return 1
	}
	return float64(r.CorrectGroups) / float64(r.ExpectedGroups)
}

// IngestRatio is max/mean per-peer ingest — the hotspot factor. A flat
// aggregator concentrates everything on one host (ratio ~ pool size); a
// degree-d tree bounds every host's fan-in.
func (r *AggReport) IngestRatio() float64 {
	if r.IngestMean == 0 {
		return 0
	}
	return float64(r.IngestMax) / r.IngestMean
}

// AggLab is one assembled aggregate-query scenario.
type AggLab struct {
	Sys  *peer.System
	Task *peer.Task
	Sup  *peer.Supervisor
	cfg  AggConfig

	pending  []string
	away     map[string]bool
	timeline []string
}

// SetupAgg builds the scenario: sources host the monitored service and
// its ws-in alerter, the aggregation (flat Group at w0, or the planner's
// tree with interiors DHT-routed across the worker pool) publishes at
// mgr, and a supervisor watches everything.
func SetupAgg(cfg AggConfig) (*AggLab, error) {
	if cfg.Sources < 2 || cfg.Workers < 1 {
		return nil, fmt.Errorf("workload: agg needs >= 2 sources and >= 1 worker (got %d/%d)", cfg.Sources, cfg.Workers)
	}
	switch cfg.Mode {
	case "flat", "tree":
	default:
		return nil, fmt.Errorf("workload: unknown agg mode %q (want flat or tree)", cfg.Mode)
	}
	if cfg.Degree <= 1 {
		cfg.Degree = 3
	}
	if cfg.Step <= 0 {
		cfg.Step = time.Second
	}
	if cfg.Window <= 0 {
		cfg.Window = 8 * cfg.Step
	}
	startWorkers := cfg.Workers
	if cfg.GrowFrom > 0 {
		if cfg.GrowFrom >= cfg.Workers {
			return nil, fmt.Errorf("workload: GrowFrom %d out of range [1, %d)", cfg.GrowFrom, cfg.Workers)
		}
		startWorkers = cfg.GrowFrom
	}

	opts := peer.DefaultOptions()
	opts.Seed = cfg.Seed
	if cfg.Mode == "tree" {
		opts.AggDegree = cfg.Degree
	}
	if cfg.Replay {
		opts.ReplayBuffer = cfg.ReplayBuffer
		if opts.ReplayBuffer <= 0 {
			opts.ReplayBuffer = 4096
		}
		opts.CheckpointInterval = cfg.CheckpointInterval
		if opts.CheckpointInterval <= 0 {
			opts.CheckpointInterval = 2 * cfg.HeartbeatInterval
		}
		if opts.CheckpointInterval <= 0 {
			opts.CheckpointInterval = 2 * time.Second
		}
	}
	sys := peer.NewSystem(opts)
	mgr, err := sys.AddPeer("mgr")
	if err != nil {
		return nil, err
	}
	for _, name := range []string{"c.com", "mon"} {
		if _, err := sys.AddPeer(name); err != nil {
			return nil, err
		}
	}
	var branches []*algebra.Node
	for i := 0; i < cfg.Sources; i++ {
		name := fmt.Sprintf("s%d", i)
		sp, err := sys.AddPeer(name)
		if err != nil {
			return nil, err
		}
		sp.Endpoint().Register("Q", func(*xmltree.Node) (*xmltree.Node, error) {
			return xmltree.Elem("ok"), nil
		}, nil)
		branches = append(branches, algebra.NewAlerter("inCOM", "ws-in", name, "e", nil))
	}
	for i := 0; i < startWorkers; i++ {
		if _, err := sys.AddPeer(fmt.Sprintf("w%d", i)); err != nil {
			return nil, err
		}
	}
	// Merge operators belong on the worker pool: sources, client,
	// manager and monitor are load-biased against failover placement and
	// excluded from DHT-routed interior placement.
	for _, busy := range []string{"mgr", "c.com", "mon"} {
		sys.Net.AddLoad(busy, 1000)
	}
	for i := 0; i < cfg.Sources; i++ {
		sys.Net.AddLoad(fmt.Sprintf("s%d", i), 1000)
	}
	// DHT-routed interiors stay on the worker pool — and off w0, the
	// Final root's host, when the pool allows it: stacking the root and
	// an interior on one peer would re-create a mini-hotspot.
	sys.SetAggHosts(func(name string) bool {
		if !strings.HasPrefix(name, "w") {
			return false
		}
		return cfg.Workers == 1 || name != "w0"
	})

	union := &algebra.Node{Op: algebra.OpUnion, Peer: "w0", Inputs: branches, Schema: []string{"e"}}
	group := &algebra.Node{
		Op: algebra.OpGroup, Peer: "w0", Inputs: []*algebra.Node{union},
		Schema: []string{"e"},
		Group:  &algebra.GroupSpec{KeyAttr: "callee", Window: cfg.Window.String()},
	}
	plan := &algebra.Node{
		Op: algebra.OpPublish, Peer: "mgr", Inputs: []*algebra.Node{group},
		Schema: []string{"e"}, Publish: &algebra.PublishSpec{ChannelID: "aggstats"},
	}
	task, err := mgr.DeployPlan(plan)
	if err != nil {
		return nil, err
	}
	lab := &AggLab{Sys: sys, Task: task, cfg: cfg, away: make(map[string]bool)}
	for i := startWorkers; i < cfg.Workers; i++ {
		lab.pending = append(lab.pending, fmt.Sprintf("w%d", i))
	}
	switch cfg.Detector {
	case "", "gossip":
		lab.Sup = sys.StartGossipSupervisor(peer.GossipOptions{
			Seed: cfg.Seed, ProbeInterval: cfg.HeartbeatInterval, Suspicion: cfg.Suspicion,
		})
	case "home":
		lab.Sup = sys.StartSupervisor("mon", peer.DetectorOptions{
			Interval: cfg.HeartbeatInterval, Suspicion: cfg.Suspicion,
		})
	default:
		return nil, fmt.Errorf("workload: unknown detector mode %q (want home or gossip)", cfg.Detector)
	}
	lab.Sup.Detector().OnDeath(func(p string, at time.Duration) {
		lab.timeline = append(lab.timeline, fmt.Sprintf("t=%v dead %s", at, p))
	})
	lab.Sup.Detector().OnRecover(func(p string, at time.Duration) {
		lab.timeline = append(lab.timeline, fmt.Sprintf("t=%v recovered %s", at, p))
	})
	return lab, nil
}

// AggHost returns the peer currently hosting the crash-schedule target:
// the first DHT-routed interior in tree mode (the flat aggregator, or
// the Final root, otherwise).
func (l *AggLab) AggHost() string {
	if ins := aggtree.Interiors(l.Task.Plan); len(ins) > 0 {
		return ins[0].Peer
	}
	host := ""
	l.Task.Plan.Walk(func(n *algebra.Node) {
		switch n.Op {
		case algebra.OpGroup, algebra.OpMergeAgg:
			host = n.Peer
		}
	})
	return host
}

// settle waits (bounded) until the task's operators stop consuming, so
// each virtual Step sees processed state.
func (l *AggLab) settle() {
	last, stable := uint64(0), 0
	for i := 0; i < 2000 && stable < 3; i++ {
		cur := l.Task.ItemsProcessed()
		if cur == last {
			stable++
		} else {
			stable, last = 0, cur
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func (l *AggLab) pendingSuspects() []string {
	sus := l.Sup.Detector().Suspects()
	out := sus[:0]
	for _, s := range sus {
		if !l.away[s] {
			out = append(out, s)
		}
	}
	return out
}

func (l *AggLab) joinEvery() int {
	if l.cfg.JoinEvery > 0 {
		return l.cfg.JoinEvery
	}
	if len(l.pending) == 0 {
		return 0
	}
	every := l.cfg.Events / (len(l.pending) + 1)
	if every < 1 {
		every = 1
	}
	return every
}

// expected computes the deterministic windowed counts the drive schedule
// produces: event i calls source i mod S at virtual time i×Step.
func (l *AggLab) expected() map[string]int {
	out := make(map[string]int)
	for i := 0; i < l.cfg.Events; i++ {
		w := int64(time.Duration(i) * l.cfg.Step / l.cfg.Window)
		key := fmt.Sprintf("http://s%d", i%l.cfg.Sources)
		out[fmt.Sprintf("%d|%s", w, key)]++
	}
	return out
}

// Run drives the events while injecting the crash/leave/join schedules,
// settles the detection and replay machinery, stops the task and scores
// the emitted windowed counts against the schedule's expectation.
func (l *AggLab) Run() (*AggReport, error) {
	cfg := l.cfg
	sys, client := l.Sys, l.Sys.Peer("c.com")
	rep := &AggReport{}
	recoverAt := map[string]time.Duration{}
	rejoinAt := map[string]time.Duration{}
	joinEvery := l.joinEvery()

	for i := 0; i < cfg.Events; i++ {
		target := fmt.Sprintf("s%d", i%cfg.Sources)
		if _, err := client.Endpoint().Invoke(target, "Q", nil); err != nil {
			return nil, fmt.Errorf("workload: driving event %d: %w", i, err)
		}
		rep.Driven++
		l.settle()
		sys.Step(cfg.Step)
		now := sys.Net.Clock().Now()
		if joinEvery > 0 && len(l.pending) > 0 && rep.Driven%joinEvery == 0 {
			name := l.pending[0]
			l.pending = l.pending[1:]
			if _, err := sys.JoinPeer(name, "mgr"); err != nil {
				return nil, fmt.Errorf("workload: admitting %s: %w", name, err)
			}
			rep.Joins++
			l.timeline = append(l.timeline, fmt.Sprintf("t=%v join %s", now, name))
		}
		for peerName, at := range recoverAt {
			if now >= at {
				sys.Net.Recover(peerName) //nolint:errcheck // known node
				delete(recoverAt, peerName)
			}
		}
		for peerName, at := range rejoinAt {
			if now >= at {
				if _, err := sys.JoinPeer(peerName, "mgr"); err != nil {
					return nil, fmt.Errorf("workload: re-admitting %s: %w", peerName, err)
				}
				delete(rejoinAt, peerName)
				l.away[peerName] = false
				l.timeline = append(l.timeline, fmt.Sprintf("t=%v rejoin %s", now, peerName))
			}
		}
		if cfg.LeaveEvery > 0 && rep.Driven%cfg.LeaveEvery == 0 {
			leaver := l.AggHost()
			if strings.HasPrefix(leaver, "w") && sys.Net.Alive(leaver) &&
				len(l.pendingSuspects()) == 0 && len(rejoinAt) == 0 {
				l.settle()
				evs, err := sys.LeavePeer(leaver)
				if err != nil {
					return nil, fmt.Errorf("workload: %s leaving gracefully: %w", leaver, err)
				}
				for _, ev := range evs {
					if ev.Repaired() {
						rep.LeaveRepairs++
					}
				}
				rep.Leaves++
				l.timeline = append(l.timeline, fmt.Sprintf("t=%v leave %s", now, leaver))
				l.away[leaver] = true
				rejoinAt[leaver] = now + cfg.MTTR
			}
		}
		if cfg.CrashEvery > 0 && rep.Driven%cfg.CrashEvery == 0 {
			victim := l.AggHost()
			// Only workers crash (an interior that fell back onto a
			// biased peer would take its alerter down with it), one
			// outstanding crash at a time.
			if strings.HasPrefix(victim, "w") && sys.Net.Alive(victim) && len(l.pendingSuspects()) == 0 {
				l.settle()
				sys.Net.Crash(victim) //nolint:errcheck // known node
				rep.Crashes++
				l.timeline = append(l.timeline, fmt.Sprintf("t=%v crash %s", now, victim))
				recoverAt[victim] = now + cfg.MTTR
			}
		}
	}
	// Let outstanding detections and repairs finish, then give the
	// anti-entropy sweep a few rounds to refill any remaining losses.
	for i := 0; i < 64 && len(l.pendingSuspects()) > 0; i++ {
		sys.Step(cfg.Step)
	}
	for i := 0; i < 8; i++ {
		l.settle()
		sys.Step(cfg.Step)
	}
	l.settle()

	// Ingest snapshot before teardown, over the candidate host set.
	byPeer := l.Task.IngestByPeer()
	rep.Ingest = make(map[string]uint64)
	var total uint64
	hosts := 0
	addHost := func(name string) {
		rep.Ingest[name] = byPeer[name]
		total += byPeer[name]
		if byPeer[name] > rep.IngestMax {
			rep.IngestMax = byPeer[name]
		}
		hosts++
	}
	for i := 0; i < cfg.Sources; i++ {
		addHost(fmt.Sprintf("s%d", i))
	}
	for i := 0; i < cfg.Workers; i++ {
		addHost(fmt.Sprintf("w%d", i))
	}
	if hosts > 0 {
		rep.IngestMean = float64(total) / float64(hosts)
	}

	l.Task.Stop()
	exp := l.expected()
	rep.Windows = func() int {
		seen := map[string]bool{}
		for k := range exp {
			seen[strings.SplitN(k, "|", 2)[0]] = true
		}
		return len(seen)
	}()
	rep.ExpectedGroups = len(exp)
	got := make(map[string]int)
	for _, it := range l.Task.Results().Drain() {
		if it.Tree.Label != "group" {
			continue
		}
		rep.ResultGroups++
		k := it.Tree.AttrOr("window", "?") + "|" + it.Tree.AttrOr("key", "?")
		n := 0
		fmt.Sscanf(it.Tree.AttrOr("count", "0"), "%d", &n)
		got[k] += n // duplicates/splits would surface as a wrong total
		rep.Records = append(rep.Records, it.Tree.String())
	}
	sort.Strings(rep.Records)
	for k, want := range exp {
		if got[k] == want {
			rep.CorrectGroups++
		}
	}
	rep.Deaths = len(l.Sup.Deaths())
	for _, ev := range l.Sup.Events() {
		if ev.Repaired() {
			rep.Repairs++
		}
	}
	rep.Replayed = sys.ReplayedItems()
	rep.Timeline = append([]string(nil), l.timeline...)
	rep.Traffic = sys.Net.Totals()
	return rep, nil
}
