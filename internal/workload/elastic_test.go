package workload

import (
	"strings"
	"testing"
)

// TestChurnGrowsLosslessly: the grow-from-k-to-n scenario — the worker
// pool starts at 4, doubles through runtime joins while the crash
// schedule keeps killing the relay, and the run still ends lossless
// with gossip detection (no Watch pre-registration for the newcomers
// anywhere).
func TestChurnGrowsLosslessly(t *testing.T) {
	cfg := DefaultChurn()
	cfg.Workers = 8
	cfg.GrowFrom = 4
	cfg.JoinEvery = 10
	cfg.Events = 60
	cfg.CrashEvery = 15
	cfg.Replay = true
	cfg.Detector = "gossip"
	lab, err := SetupChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := lab.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Joins != 4 {
		t.Errorf("joins = %d, want 4 (w4..w7 admitted at runtime)", rep.Joins)
	}
	if rep.Crashes == 0 {
		t.Fatal("no crashes injected — the schedule never fired")
	}
	if rep.Repairs < rep.Crashes {
		t.Errorf("repairs = %d < crashes = %d", rep.Repairs, rep.Crashes)
	}
	if rep.Completeness() != 1 {
		t.Errorf("completeness = %.2f, want 1.0 (%d/%d, replayed %d)",
			rep.Completeness(), rep.Received, rep.Expected(), rep.Replayed)
	}
	// The admissions are on the timeline in join order.
	joins := 0
	for _, e := range rep.Timeline {
		if strings.Contains(e, " join ") {
			joins++
		}
	}
	if joins != 4 {
		t.Errorf("timeline records %d joins, want 4: %v", joins, rep.Timeline)
	}
}

// TestChurnFlapMixStaysLossless: an aggressive join/crash interleaving
// — admissions every 6 events, crashes every 9 — must neither lose
// events (replay on) nor wedge the drain logic: joined-then-crashed
// workers pair against the crash log as a multiset, so the stagnation
// bound still sees every injected crash detected.
func TestChurnFlapMixStaysLossless(t *testing.T) {
	cfg := DefaultChurn()
	cfg.Workers = 9
	cfg.GrowFrom = 4
	cfg.JoinEvery = 6
	cfg.Events = 72
	cfg.CrashEvery = 9
	cfg.MTTR = 8 * cfg.Step
	cfg.Replay = true
	cfg.Detector = "gossip"
	lab, err := SetupChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := lab.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Joins != 5 {
		t.Errorf("joins = %d, want 5", rep.Joins)
	}
	if rep.Crashes < 2 {
		t.Errorf("crashes = %d, want a real flapping mix", rep.Crashes)
	}
	if rep.Completeness() != 1 {
		t.Errorf("completeness = %.2f, want 1.0 (%d/%d)", rep.Completeness(), rep.Received, rep.Expected())
	}
	if rep.DetectionLatency.N() != rep.Crashes {
		t.Errorf("latency samples = %d, want one per injected crash (%d) — the multiset pairing", rep.DetectionLatency.N(), rep.Crashes)
	}
}

// TestChurnJoinTimelineDeterministic: the hard elastic requirement —
// same seed, same config ⇒ byte-identical join/crash/dead/recover
// timelines, with runtime joins enabled.
func TestChurnJoinTimelineDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: runs the elastic scenario twice; covered by the matrix job")
	}
	run := func() string {
		cfg := DefaultChurn()
		cfg.Workers = 8
		cfg.GrowFrom = 4
		cfg.JoinEvery = 8
		cfg.Events = 56
		cfg.CrashEvery = 12
		cfg.Replay = true
		cfg.Detector = "gossip"
		lab, err := SetupChurn(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := lab.Run()
		if err != nil {
			t.Fatal(err)
		}
		return strings.Join(rep.Timeline, "\n")
	}
	a, b := run(), run()
	if a == "" {
		t.Fatal("schedule produced an empty timeline")
	}
	if a != b {
		t.Fatalf("same seed diverged:\n--- run1 ---\n%s\n--- run2 ---\n%s", a, b)
	}
}

// TestChurnJoinDuringHomePartition: workers keep joining while the old
// detector home is partitioned away — the gossip membership admits
// them, keeps detecting the real crashes, and the run stays lossless;
// the late joiners must not bridge the split back to the isolated home.
func TestChurnJoinDuringHomePartition(t *testing.T) {
	cfg := DefaultChurn()
	cfg.Workers = 7
	cfg.GrowFrom = 4
	cfg.JoinEvery = 10
	cfg.Events = 50
	cfg.CrashEvery = 12
	cfg.Replay = true
	cfg.Detector = "gossip"
	cfg.PartitionHomeAfter = 5
	lab, err := SetupChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := lab.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Joins != 3 {
		t.Errorf("joins = %d, want 3 admitted behind the partition", rep.Joins)
	}
	for _, j := range rep.JoinLog {
		if lab.Sys.Net.Reachable(j.Peer, "mon") {
			t.Errorf("late joiner %s can reach the isolated home — the admission bridged the split", j.Peer)
		}
	}
	if rep.Crashes == 0 {
		t.Error("no relay crash was injected after the partition")
	}
	if rep.Completeness() != 1 {
		t.Errorf("completeness = %.2f, want 1.0 despite the partitioned home (%d/%d)",
			rep.Completeness(), rep.Received, rep.Expected())
	}
}

// TestChurnSpreadBoundsCheckpointLoad: many pipelines mean many
// checkpoint keys; with Spread on (virtual tokens + bounded-load
// placement) no peer serves more than ~2× the mean checkpoint traffic
// in steady state, while classic single-token placement concentrates a
// visible hotspot. Crash-free: the measurement isolates placement, not
// fault tolerance.
func TestChurnSpreadBoundsCheckpointLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: two full elastic runs; covered by the matrix job")
	}
	ratio := func(spread bool) (float64, uint64) {
		cfg := DefaultChurn()
		cfg.Workers = 8
		cfg.GrowFrom = 4
		cfg.JoinEvery = 10
		cfg.Events = 60
		cfg.CrashEvery = 0
		cfg.Replay = true
		cfg.Detector = "gossip"
		cfg.Pipelines = 12
		cfg.Spread = spread
		lab, err := SetupChurn(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := lab.Run()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Completeness() != 1 {
			t.Fatalf("spread=%v: completeness %.2f, want 1.0", spread, rep.Completeness())
		}
		load := lab.Sys.DB.CheckpointLoad()
		var total, max uint64
		for _, l := range load {
			total += l.Total()
			if l.Total() > max {
				max = l.Total()
			}
		}
		if total == 0 {
			t.Fatalf("spread=%v: no checkpoint traffic measured after growth", spread)
		}
		mean := float64(total) / float64(len(load))
		return float64(max) / mean, total
	}
	bounded, totalOn := ratio(true)
	hotspot, totalOff := ratio(false)
	if bounded > 2.01 {
		t.Errorf("spread-on max/mean checkpoint load = %.2f, want <= 2 (bounded-load guarantee)", bounded)
	}
	if hotspot <= bounded {
		t.Errorf("classic placement ratio %.2f not worse than spread ratio %.2f — the hotspot vanished?", hotspot, bounded)
	}
	if totalOn == 0 || totalOff == 0 {
		t.Error("one of the runs produced no checkpoint puts")
	}
}

// TestChurnJoinScheduleValidation: a join cadence that cannot admit
// every pending worker within the run is a config error, not a silent
// partial growth.
func TestChurnJoinScheduleValidation(t *testing.T) {
	cfg := DefaultChurn()
	cfg.Workers = 8
	cfg.GrowFrom = 4
	cfg.JoinEvery = 30 // 4 joins x 30 events > 60-event run
	cfg.Events = 60
	if _, err := SetupChurn(cfg); err == nil {
		t.Error("a join schedule that strands pending workers was accepted")
	}
}
