package transport

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"p2pm/internal/monoid"
	"p2pm/internal/wire"
)

// Node is the cluster monitor node of the multi-process mode: the same
// windowed in-network aggregation the simnet experiments run, expressed
// purely over a Transport so it is backend-agnostic. The lexically
// smallest peer is the merge root, every other peer is a source that
// generates a deterministic record stream, pre-aggregates each window
// into a monoid partial state (exactly what PartialAgg does next to a
// simnet source), and ships it as a wire.Partial. The root merges the
// states of all sources per window — commutative monoid merge, so
// arrival order cannot change the answer — and emits one result line
// per window.
//
// Delivery is exactly-once end-to-end over an at-most-once transport:
// sources resend an unacknowledged window's partial until the root
// acks it, and the root absorbs only the first copy of each
// (source, window). A killed TCP connection (or a simnet link fault)
// therefore delays a window, never loses or double-counts it — the
// property the backend-equivalence tests pin against the X2 chart.
//
// Alongside the aggregate, nodes run a gossip heartbeat (wire.Probe/
// Ack with piggybacked alive updates), sources announce their partial
// stream with a wire.Publish descriptor, and the root mirrors each
// completed window's merged state to the lexically second peer with a
// wire.CkptPut — so every wire message kind a real deployment needs
// crosses the transport in this scenario.
type Node struct {
	cfg NodeConfig
	tr  Transport

	root   string
	mirror string
	srcs   []string // sources, sorted

	mu        sync.Mutex
	cond      *sync.Cond
	acked     map[uint64]bool                     // source: windows the root acked
	partials  map[uint64]map[string]*wire.Partial // root: first copy per (window, source)
	emitted   []string                            // root: result lines
	nextEmit  uint64                              // root: lowest incomplete window
	ckpts     map[string]string                   // mirror: checkpointed window states
	defs      map[string]string                   // root: published stream descriptors by source
	lastSeen  map[string]time.Time                // heartbeat: peer -> last gossip sighting
	probeSeq  uint64
	dupes     uint64 // root: duplicate partials discarded by the dedup
	rejected  uint64 // root: partials rejected (bad state / unknown fn)
	done      bool
	stopped   bool
	stopCh    chan struct{}
	announced bool
}

// NodeConfig configures one cluster node. Every node of a cluster must
// run the same Fn/Windows/EventsPerWindow/Users numbers — they define
// the scenario — while Self varies.
type NodeConfig struct {
	// Self is this node's peer name.
	Self string
	// Peers names every cluster member including Self. The lexically
	// smallest is the merge root, the second smallest the checkpoint
	// mirror; the rest (plus the mirror) are sources.
	Peers []string
	// Fn is the aggregate function (monoid registry name). Default
	// count.
	Fn string
	// Windows is how many windows the scenario completes. Default 5.
	Windows int
	// EventsPerWindow is how many records each source generates per
	// window. Default 16.
	EventsPerWindow int
	// Users sizes the deterministic value universe for value-consuming
	// aggregates. Default 24.
	Users int
	// ResendEvery is the source-side resend period for unacked
	// partials. Default 150ms.
	ResendEvery time.Duration
	// HeartbeatEvery is the gossip probe period. Default 200ms.
	HeartbeatEvery time.Duration
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.Fn == "" {
		c.Fn = "count"
	}
	if c.Windows <= 0 {
		c.Windows = 5
	}
	if c.EventsPerWindow <= 0 {
		c.EventsPerWindow = 16
	}
	if c.Users <= 0 {
		c.Users = 24
	}
	if c.ResendEvery <= 0 {
		c.ResendEvery = 150 * time.Millisecond
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 200 * time.Millisecond
	}
	return c
}

// NewNode builds a node over its transport. Call Start to run it.
func NewNode(cfg NodeConfig, tr Transport) (*Node, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Peers) < 2 {
		return nil, fmt.Errorf("transport: a cluster needs >= 2 peers, got %d", len(cfg.Peers))
	}
	peers := append([]string(nil), cfg.Peers...)
	sort.Strings(peers)
	self := false
	for _, p := range peers {
		if p == cfg.Self {
			self = true
		}
	}
	if !self {
		return nil, fmt.Errorf("transport: self %q is not among the cluster peers %v", cfg.Self, peers)
	}
	if _, ok := monoid.Lookup(cfg.Fn); !ok {
		return nil, fmt.Errorf("transport: unknown aggregate function %q", cfg.Fn)
	}
	n := &Node{
		cfg:      cfg,
		tr:       tr,
		root:     peers[0],
		mirror:   peers[1],
		srcs:     peers[1:],
		acked:    make(map[uint64]bool),
		partials: make(map[uint64]map[string]*wire.Partial),
		ckpts:    make(map[string]string),
		defs:     make(map[string]string),
		lastSeen: make(map[string]time.Time),
		stopCh:   make(chan struct{}),
	}
	n.cond = sync.NewCond(&n.mu)
	return n, nil
}

// Root returns the cluster's merge-root peer name.
func (n *Node) Root() string { return n.root }

// IsRoot reports whether this node merges and emits the results.
func (n *Node) IsRoot() bool { return n.cfg.Self == n.root }

// Start installs the handler and launches the node's loops.
func (n *Node) Start() {
	n.tr.Handle(n.onMessage)
	go n.heartbeatLoop()
	if !n.IsRoot() {
		go n.sourceLoop()
	}
}

// Stop ends the node's loops (the transport is left to the caller).
func (n *Node) Stop() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.stopped {
		n.stopped = true
		close(n.stopCh)
		n.cond.Broadcast()
	}
}

// Wait blocks until the node finished its part of the scenario — the
// root emitted every window, a source got every window acked — or the
// timeout passes.
func (n *Node) Wait(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		n.mu.Lock()
		n.cond.Broadcast()
		n.mu.Unlock()
	})
	defer timer.Stop()
	n.mu.Lock()
	defer n.mu.Unlock()
	for !n.done && !n.stopped && time.Now().Before(deadline) {
		n.cond.Wait()
	}
	if !n.done {
		return fmt.Errorf("transport: node %s timed out after %v (acked %d, emitted %d of %d windows)",
			n.cfg.Self, timeout, len(n.acked), len(n.emitted), n.cfg.Windows)
	}
	return nil
}

// Results returns the emitted window lines (root only; empty
// elsewhere).
func (n *Node) Results() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]string(nil), n.emitted...)
}

// MirrorCkpts returns the window checkpoints this node stored as the
// cluster's mirror, sorted by key.
func (n *Node) MirrorCkpts() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	keys := make([]string, 0, len(n.ckpts))
	for k := range n.ckpts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// PublishedDefs returns the stream descriptors the root received from
// its sources, keyed by source, as "source=def" lines sorted by
// source.
func (n *Node) PublishedDefs() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.defs))
	for s, d := range n.defs {
		out = append(out, s+"="+d)
	}
	sort.Strings(out)
	return out
}

// AlivePeers returns how many cluster peers this node has heard a
// gossip heartbeat from within 3 heartbeat periods.
func (n *Node) AlivePeers() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	alive := 0
	cut := time.Now().Add(-3 * n.cfg.HeartbeatEvery)
	for _, at := range n.lastSeen {
		if at.After(cut) {
			alive++
		}
	}
	return alive
}

// Dupes returns how many duplicate partials the root's dedup
// discarded — the exactly-once layer absorbing transport retries.
func (n *Node) Dupes() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.dupes
}

// Rejected returns how many partials the root rejected (unknown fn or
// a state the monoid refused to decode).
func (n *Node) Rejected() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rejected
}

// ---------------------------------------------------------------------
// Source side

// sourceValue derives record i of window w at source src — a pure
// function of its coordinates, so every backend (and every process)
// generates the identical stream.
func sourceValue(src string, w, i, users int) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d", src, w, i)
	return fmt.Sprintf("u%d", h.Sum64()%uint64(users))
}

// windowState pre-aggregates one source window into a monoid state.
func windowState(fn monoid.Monoid, src string, w int, cfg NodeConfig) (monoid.State, int) {
	st := fn.Zero()
	for i := 0; i < cfg.EventsPerWindow; i++ {
		// Values are "u<k>" tokens; numeric aggregates consume the
		// index part. Absorb errors cannot happen for registry
		// functions over this generator, but stay counted regardless.
		val := sourceValue(src, w, i, cfg.Users)
		if fn.NeedsValue() && fn.Name() != "set" && fn.Name() != "distinct" && fn.Name() != "freq" {
			val = strings.TrimPrefix(val, "u")
		}
		if err := st.Absorb(val); err != nil {
			continue
		}
	}
	return st, cfg.EventsPerWindow
}

// sourceLoop generates and ships every window's partial, resending
// until the root acknowledges it.
func (n *Node) sourceLoop() {
	fn, _ := monoid.Lookup(n.cfg.Fn)
	// Announce the partial stream once, in the kadop descriptor schema
	// (the reuse layer's publish path over the wire).
	def := fmt.Sprintf(`<Stream PeerId=%q StreamId=%q isAChannel="true"><Operator><PartialAgg/></Operator><Operands/><Stats/></Stream>`,
		n.cfg.Self, "partial-"+n.cfg.Fn)
	n.tr.Send(n.root, &wire.Publish{Def: def}) //nolint:errcheck // lossy send; root tolerates absence
	for w := 0; w < n.cfg.Windows; w++ {
		st, count := windowState(fn, n.cfg.Self, w, n.cfg)
		msg := &wire.Partial{
			Fn:     n.cfg.Fn,
			Window: uint64(w),
			Source: n.cfg.Self,
			Count:  uint64(count),
			State:  st.Encode(),
		}
		for {
			n.tr.Send(n.root, msg) //nolint:errcheck // resend covers the loss
			if n.waitAck(uint64(w)) {
				break
			}
			if n.isStopped() {
				return
			}
		}
	}
	n.mu.Lock()
	n.done = true
	n.cond.Broadcast()
	n.mu.Unlock()
}

// waitAck waits one resend period for the root's ack of window w.
func (n *Node) waitAck(w uint64) bool {
	deadline := time.Now().Add(n.cfg.ResendEvery)
	timer := time.AfterFunc(n.cfg.ResendEvery, func() {
		n.mu.Lock()
		n.cond.Broadcast()
		n.mu.Unlock()
	})
	defer timer.Stop()
	n.mu.Lock()
	defer n.mu.Unlock()
	for !n.acked[w] && !n.stopped && time.Now().Before(deadline) {
		n.cond.Wait()
	}
	return n.acked[w]
}

func (n *Node) isStopped() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stopped
}

// ---------------------------------------------------------------------
// Heartbeats

func (n *Node) heartbeatLoop() {
	tick := time.NewTicker(n.cfg.HeartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-tick.C:
		}
		n.mu.Lock()
		n.probeSeq++
		seq := n.probeSeq
		n.mu.Unlock()
		up := []wire.GossipUpdate{{Peer: n.cfg.Self, Status: wire.StatusAlive, Inc: seq}}
		for _, p := range n.cfg.Peers {
			if p == n.cfg.Self {
				continue
			}
			n.tr.Send(p, &wire.Probe{Seq: seq, Updates: up}) //nolint:errcheck // liveness is best-effort
		}
	}
}

// ---------------------------------------------------------------------
// Message handling

func (n *Node) onMessage(from string, m wire.Message) {
	switch t := m.(type) {
	case *wire.Partial:
		if n.IsRoot() {
			n.onPartial(from, t)
		}
	case *wire.Ack:
		n.mu.Lock()
		if t.Stream == n.cfg.Self {
			n.acked[t.Window] = true
		}
		n.lastSeen[from] = time.Now()
		n.cond.Broadcast()
		n.mu.Unlock()
	case *wire.Probe:
		n.mu.Lock()
		n.lastSeen[from] = time.Now()
		n.mu.Unlock()
		// Ack the probe with our own aliveness riding along.
		n.tr.Send(from, &wire.Ack{ //nolint:errcheck // best-effort
			Seq:     t.Seq,
			Updates: []wire.GossipUpdate{{Peer: n.cfg.Self, Status: wire.StatusAlive, Inc: t.Seq}},
		})
	case *wire.Gossip:
		n.mu.Lock()
		n.lastSeen[from] = time.Now()
		n.mu.Unlock()
	case *wire.Publish:
		if n.IsRoot() {
			n.mu.Lock()
			n.defs[from] = t.Def
			n.mu.Unlock()
		}
	case *wire.CkptPut:
		n.mu.Lock()
		n.ckpts[t.Key] = t.Value
		n.mu.Unlock()
	}
}

// onPartial is the root's ingest: dedup by (source, window), validate
// the state through the monoid codec, ack, and emit every window that
// just became complete — in window order, so the output is a
// deterministic function of the scenario alone.
func (n *Node) onPartial(from string, p *wire.Partial) {
	fn, ok := monoid.Lookup(p.Fn)
	if !ok || p.Fn != n.cfg.Fn {
		n.mu.Lock()
		n.rejected++
		n.mu.Unlock()
		return
	}
	if _, err := fn.Decode(p.State); err != nil {
		// A corrupt state never reaches a window (parsePartial
		// semantics): count and drop, no ack, the source will resend.
		n.mu.Lock()
		n.rejected++
		n.mu.Unlock()
		return
	}
	n.mu.Lock()
	if p.Window < uint64(n.cfg.Windows) {
		win := n.partials[p.Window]
		if win == nil {
			win = make(map[string]*wire.Partial)
			n.partials[p.Window] = win
		}
		if _, seen := win[p.Source]; seen {
			n.dupes++
		} else {
			win[p.Source] = p
		}
	}
	n.mu.Unlock()
	// Always re-ack: the previous ack may have been lost.
	n.tr.Send(from, &wire.Ack{Stream: p.Source, Window: p.Window}) //nolint:errcheck // resend covers it
	n.emitComplete()
}

// emitComplete merges and emits every ready window in order.
func (n *Node) emitComplete() {
	fn, _ := monoid.Lookup(n.cfg.Fn)
	for {
		n.mu.Lock()
		w := n.nextEmit
		win := n.partials[w]
		if n.done || len(win) < len(n.srcs) {
			n.mu.Unlock()
			return
		}
		merged := fn.Zero()
		var events uint64
		for _, src := range n.srcs { // sorted: deterministic merge order
			p := win[src]
			st, err := fn.Decode(p.State)
			if err != nil {
				continue // validated at ingest; unreachable
			}
			merged.Merge(st) //nolint:errcheck // same-monoid merge cannot fail
			events += p.Count
		}
		attrs := map[string]string{}
		merged.Final(func(a, v string) { attrs[a] = v })
		keys := make([]string, 0, len(attrs))
		for k := range attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		fmt.Fprintf(&b, "window=%d fn=%s", w, n.cfg.Fn)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%s", k, attrs[k])
		}
		fmt.Fprintf(&b, " events=%d sources=%d", events, len(n.srcs))
		line := b.String()
		state := merged.Encode()
		n.emitted = append(n.emitted, line)
		n.nextEmit++
		n.done = n.nextEmit == uint64(n.cfg.Windows)
		n.cond.Broadcast()
		n.mu.Unlock()
		// Mirror the completed window's merged state (kadop
		// PutCheckpoint semantics over the wire).
		if n.mirror != n.cfg.Self {
			key := fmt.Sprintf("ckpt|net|window-%03d", w)
			n.tr.Send(n.mirror, &wire.CkptPut{Key: key, Value: state}) //nolint:errcheck // mirror is advisory
		}
	}
}
