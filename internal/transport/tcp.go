package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"p2pm/internal/telemetry"
	"p2pm/internal/wire"
)

// TCPOptions tune the socket backend. The zero value takes every
// default; see docs/TRANSPORT.md for the tuning table.
type TCPOptions struct {
	// Cluster names the deployment. Both ends of a connection must
	// agree (the Hello handshake enforces it) so two clusters sharing
	// a host list cannot silently cross-feed. Default "p2pm".
	Cluster string
	// DialTimeout bounds one outbound connection attempt. Default 2s.
	DialTimeout time.Duration
	// ReadTimeout is the per-frame read deadline on inbound
	// connections: a link idle longer than this is closed and the
	// sender reconnects. Keep it above the protocol's heartbeat
	// period. Default 30s.
	ReadTimeout time.Duration
	// WriteTimeout bounds one frame write. Default 5s.
	WriteTimeout time.Duration
	// BackoffMin/BackoffMax bound the exponential reconnect backoff
	// after a failed dial or a broken connection. Defaults 50ms / 2s.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// QueueDepth is the per-peer outbound queue capacity, in
	// messages. A full queue drops the newest message into
	// Stats().Dropped — the transport never blocks the caller on a
	// dead peer; resend-until-ack above recovers. Default 512.
	QueueDepth int
	// MaxFrame bounds one frame's payload; an inbound length header
	// beyond it closes the connection (framing is assumed lost).
	// Default 4 MiB.
	MaxFrame int
	// Telemetry, when non-nil, registers the endpoint's traffic
	// counters (transport_*_total, wire_*_total; labels backend="tcp",
	// peer=<self>) with the given registry. Nil keeps the endpoint
	// uninstrumented at zero cost.
	Telemetry *telemetry.Registry
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.Cluster == "" {
		o.Cluster = "p2pm"
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = 30 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 5 * time.Second
	}
	if o.BackoffMin <= 0 {
		o.BackoffMin = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 512
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = 4 << 20
	}
	return o
}

// TCP is the socket transport backend: wire messages in length-
// prefixed frames (uint32 big-endian payload length, then the message
// bytes) over one pooled outbound connection per peer. Each peer link
// has its own outbound queue drained by a writer goroutine that dials
// lazily, re-dials with exponential backoff when the peer is away, and
// requeues the frame it was carrying when a write fails — so a
// connection reset loses at most nothing from the queue, and ordering
// within the link is preserved. Inbound connections authenticate with
// a Hello frame naming the dialing peer, then stream frames to the
// handler on the connection's read goroutine.
type TCP struct {
	self string
	opts TCPOptions
	ln   net.Listener

	handler atomic.Pointer[Handler]

	mu     sync.Mutex
	peers  map[string]*tcpPeer
	conns  map[net.Conn]struct{} // live inbound conns (for DropConnections/Close)
	closed bool
	done   chan struct{} // closed by Close; wakes writers out of queue waits and backoff sleeps

	wg sync.WaitGroup

	sent, sentBytes, recv, recvBytes, dropped, reconnects atomic.Uint64
	decode                                                wire.Stats
	tele                                                  *epMetrics // nil unless TCPOptions.Telemetry set
}

// tcpPeer is one outbound link: address, queue, and the writer's
// current connection.
type tcpPeer struct {
	name string
	addr string
	q    chan []byte

	mu   sync.Mutex
	conn net.Conn
}

var _ Transport = (*TCP)(nil)

// ListenTCP opens the endpoint: it binds addr for inbound connections
// and returns immediately; outbound links appear via AddPeer.
func ListenTCP(self, addr string, opts TCPOptions) (*TCP, error) {
	if self == "" {
		return nil, fmt.Errorf("transport: tcp endpoint needs a peer name")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t := &TCP{
		self:  self,
		opts:  opts.withDefaults(),
		ln:    ln,
		peers: make(map[string]*tcpPeer),
		conns: make(map[net.Conn]struct{}),
		done:  make(chan struct{}),
	}
	t.tele = newEPMetrics(t.opts.Telemetry, "tcp", self, &t.decode)
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address (useful with ":0").
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// Self returns the endpoint's peer name.
func (t *TCP) Self() string { return t.self }

// Handle installs the delivery handler.
func (t *TCP) Handle(h Handler) { t.handler.Store(&h) }

// AddPeer registers a named peer's dial address and starts its
// outbound writer. Re-adding an existing peer updates nothing.
func (t *TCP) AddPeer(name, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || name == t.self {
		return
	}
	if _, ok := t.peers[name]; ok {
		return
	}
	p := &tcpPeer{name: name, addr: addr, q: make(chan []byte, t.opts.QueueDepth)}
	t.peers[name] = p
	t.wg.Add(1)
	go t.writeLoop(p)
}

// Peers lists the registered outbound peers, sorted.
func (t *TCP) Peers() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.peers))
	for n := range t.peers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Send enqueues one message on the peer's outbound queue. It never
// blocks on the network: a full queue (peer dead longer than the
// queue absorbs) drops the message into Stats().Dropped.
func (t *TCP) Send(to string, m wire.Message) error {
	t.mu.Lock()
	p := t.peers[to]
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return fmt.Errorf("transport: endpoint %s is closed", t.self)
	}
	if p == nil {
		return fmt.Errorf("transport: unknown peer %q", to)
	}
	b := wire.Encode(m)
	select {
	case p.q <- b:
		t.sent.Add(1)
		t.sentBytes.Add(uint64(len(b)))
		if t.tele != nil {
			t.tele.sent.Inc()
			t.tele.sentBytes.Add(uint64(len(b)))
		}
	default:
		t.countDrop()
	}
	return nil
}

// Stats snapshots the endpoint's counters.
func (t *TCP) Stats() Stats {
	return Stats{
		Sent:          t.sent.Load(),
		SentBytes:     t.sentBytes.Load(),
		Received:      t.recv.Load(),
		ReceivedBytes: t.recvBytes.Load(),
		Dropped:       t.dropped.Load(),
		Reconnects:    t.reconnects.Load(),
	}
}

// DropConnections force-closes every live connection, inbound and
// outbound, without closing the endpoint: writers re-dial with
// backoff, readers end, queued messages stay queued. The backend-
// equivalence churn tests use it as the socket analogue of a link
// fault.
func (t *TCP) DropConnections() {
	t.mu.Lock()
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	peers := make([]*tcpPeer, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	t.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	for _, p := range peers {
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
			p.conn = nil
		}
		p.mu.Unlock()
	}
}

// Close shuts the endpoint down: the listener stops, all connections
// close, the writer goroutines end. Queued-but-unsent messages are
// counted dropped.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	peers := make([]*tcpPeer, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	// The queue channels are never closed: a Send that read closed=false
	// just before this point may still be enqueueing, and closing under
	// it would be a send-on-closed-channel panic. Writers exit via done.
	close(t.done)
	t.ln.Close()
	for _, p := range peers {
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
			p.conn = nil
		}
		p.mu.Unlock()
	}
	for _, c := range conns {
		c.Close()
	}
	t.wg.Wait()
	return nil
}

// countDrop counts one lost message in the endpoint stats and, when
// instrumented, the telemetry registry.
func (t *TCP) countDrop() {
	t.dropped.Add(1)
	if t.tele != nil {
		t.tele.dropped.Inc()
	}
}

func (t *TCP) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

// ---------------------------------------------------------------------
// Outbound

// writeLoop drains one peer's queue: dial (with backoff) when no
// connection is up, write the frame, and on a write error reconnect
// and retry the same frame so the link never loses what it already
// dequeued.
func (t *TCP) writeLoop(p *tcpPeer) {
	defer t.wg.Done()
	backoff := t.opts.BackoffMin
	for {
		var b []byte
		select {
		case <-t.done:
			// Count whatever is still queued as dropped, then exit.
			for {
				select {
				case <-p.q:
					t.countDrop()
				default:
					return
				}
			}
		case b = <-p.q:
		}
		for {
			conn, fresh := t.ensureConn(p)
			if conn == nil {
				if t.isClosed() {
					t.countDrop()
					break
				}
				select {
				case <-t.done:
					// Loop around: ensureConn now fails and the
					// isClosed branch above drops this frame.
				case <-time.After(backoff):
				}
				backoff *= 2
				if backoff > t.opts.BackoffMax {
					backoff = t.opts.BackoffMax
				}
				continue
			}
			if fresh {
				backoff = t.opts.BackoffMin
			}
			if err := t.writeFrame(conn, b); err != nil {
				p.mu.Lock()
				if p.conn == conn {
					p.conn = nil
				}
				p.mu.Unlock()
				conn.Close()
				continue // retry the same frame on a fresh connection
			}
			break
		}
	}
}

// ensureConn returns the peer's live connection, dialing one (and
// sending the Hello handshake) if needed. fresh reports a new dial.
func (t *TCP) ensureConn(p *tcpPeer) (net.Conn, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != nil {
		return p.conn, false
	}
	if t.isClosed() {
		return nil, false
	}
	conn, err := net.DialTimeout("tcp", p.addr, t.opts.DialTimeout)
	if err != nil {
		return nil, false
	}
	hello := wire.Encode(&wire.Hello{Peer: t.self, Proto: wire.ProtoVersion, Cluster: t.opts.Cluster})
	if err := t.writeFrame(conn, hello); err != nil {
		conn.Close()
		return nil, false
	}
	p.conn = conn
	t.reconnects.Add(1)
	if t.tele != nil {
		t.tele.reconnects.Inc()
	}
	return conn, true
}

// writeFrame writes one length-prefixed frame under the write
// deadline.
func (t *TCP) writeFrame(conn net.Conn, b []byte) error {
	if err := conn.SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout)); err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := conn.Write(b)
	return err
}

// ---------------------------------------------------------------------
// Inbound

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.conns[conn] = struct{}{}
		t.wg.Add(1)
		t.mu.Unlock()
		go t.readLoop(conn)
	}
}

// readLoop authenticates one inbound connection via its Hello frame
// and then dispatches every following frame to the handler. A corrupt
// message inside an intact frame is counted dropped and skipped; a
// corrupt frame header (length beyond MaxFrame) abandons the
// connection, because framing sync is gone.
func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
	}()
	from := ""
	for {
		b, err := t.readFrame(conn)
		if err != nil {
			return
		}
		m, err := t.decode.Decode(b)
		if err != nil {
			t.countDrop()
			continue
		}
		if from == "" {
			h, ok := m.(*wire.Hello)
			if !ok || h.Peer == "" || h.Cluster != t.opts.Cluster {
				t.countDrop()
				return // not one of ours: refuse the connection
			}
			from = h.Peer
			continue
		}
		h := t.handler.Load()
		if h == nil {
			t.countDrop()
			continue
		}
		t.recv.Add(1)
		t.recvBytes.Add(uint64(len(b)))
		if t.tele != nil {
			t.tele.recv.Inc()
			t.tele.recvBytes.Add(uint64(len(b)))
		}
		(*h)(from, m)
	}
}

// readFrame reads one length-prefixed frame under the read deadline.
func (t *TCP) readFrame(conn net.Conn) ([]byte, error) {
	if err := conn.SetReadDeadline(time.Now().Add(t.opts.ReadTimeout)); err != nil {
		return nil, err
	}
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int(n) > t.opts.MaxFrame {
		t.countDrop()
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds MaxFrame %d", n, t.opts.MaxFrame)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(conn, b); err != nil {
		return nil, err
	}
	return b, nil
}
