package transport

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"p2pm/internal/simnet"
	"p2pm/internal/telemetry"
	"p2pm/internal/wire"
)

// SimNet is the in-process transport backend: endpoints exchange wire
// messages over a simnet.Network, so every send pays the simulated
// link's fault model (crashes, partitions, injected loss) and lands in
// its per-link byte accounting — with pointer-free fidelity, because
// each message is encoded and re-decoded across the "link" exactly as
// the tcp backend would put it on a socket. Delivery is synchronous on
// the sender's goroutine, which keeps scenarios deterministic: same
// seed, same sends, same handler interleaving.
type SimNet struct {
	nw *simnet.Network

	mu  sync.Mutex
	eps map[string]*SimEndpoint
	reg *telemetry.Registry
}

// NewSimNet builds a transport registry over a simulated network.
func NewSimNet(nw *simnet.Network) *SimNet {
	return &SimNet{nw: nw, eps: make(map[string]*SimEndpoint)}
}

// Net exposes the underlying simulated network (fault injection,
// clock, traffic counters).
func (s *SimNet) Net() *simnet.Network { return s.nw }

// Instrument registers every endpoint's traffic counters (current and
// future ones) with the telemetry registry, labeled backend="sim" and
// peer=<name>, and mirrors per-endpoint wire decode stats. Idempotent;
// uninstrumented SimNets pay nothing.
func (s *SimNet) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg = reg
	for _, ep := range s.eps {
		ep.tele.Store(newEPMetrics(reg, "sim", ep.name, &ep.decode))
	}
}

// Endpoint registers (or returns) the named peer's endpoint, adding
// its node to the simulated network.
func (s *SimNet) Endpoint(name string) *SimEndpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ep, ok := s.eps[name]; ok {
		return ep
	}
	s.nw.AddNode(name)
	ep := &SimEndpoint{net: s, name: name}
	if s.reg != nil {
		ep.tele.Store(newEPMetrics(s.reg, "sim", name, &ep.decode))
	}
	s.eps[name] = ep
	return ep
}

func (s *SimNet) endpoint(name string) *SimEndpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eps[name]
}

// SimEndpoint is one peer's transport over the simulated network.
type SimEndpoint struct {
	net  *SimNet
	name string

	handler atomic.Pointer[Handler]
	closed  atomic.Bool

	sent, sentBytes, recv, recvBytes, dropped atomic.Uint64
	decode                                    wire.Stats
	tele                                      atomic.Pointer[epMetrics]
}

var _ Transport = (*SimEndpoint)(nil)

// Self returns the endpoint's peer name.
func (ep *SimEndpoint) Self() string { return ep.name }

// Handle installs the delivery handler.
func (ep *SimEndpoint) Handle(h Handler) { ep.handler.Store(&h) }

// Peers lists every other registered endpoint, sorted.
func (ep *SimEndpoint) Peers() []string {
	ep.net.mu.Lock()
	defer ep.net.mu.Unlock()
	names := make([]string, 0, len(ep.net.eps)-1)
	for n := range ep.net.eps {
		if n != ep.name {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Send encodes the message, ships the bytes across the simulated
// from→to link (faults and accounting included), and — when the link
// delivers — re-decodes on the far side and runs the target's handler
// synchronously. Messages lost to the fault model count as Dropped on
// the sender, mirroring simnet's per-link dropped counters.
func (ep *SimEndpoint) Send(to string, m wire.Message) error {
	if ep.closed.Load() {
		return fmt.Errorf("transport: endpoint %s is closed", ep.name)
	}
	tgt := ep.net.endpoint(to)
	if tgt == nil {
		return fmt.Errorf("transport: unknown peer %q", to)
	}
	b := wire.Encode(m)
	ep.sent.Add(1)
	ep.sentBytes.Add(uint64(len(b)))
	tele := ep.tele.Load()
	if tele != nil {
		tele.sent.Inc()
		tele.sentBytes.Add(uint64(len(b)))
	}
	if !ep.net.nw.DeliverPayload(ep.name, to, len(b)) {
		ep.dropped.Add(1)
		if tele != nil {
			tele.dropped.Inc()
		}
		return nil
	}
	tgt.deliver(ep.name, b)
	return nil
}

// deliver decodes and dispatches one arrived message.
func (ep *SimEndpoint) deliver(from string, b []byte) {
	if ep.closed.Load() {
		return
	}
	tele := ep.tele.Load()
	m, err := ep.decode.Decode(b)
	if err != nil {
		ep.dropped.Add(1)
		if tele != nil {
			tele.dropped.Inc()
		}
		return
	}
	h := ep.handler.Load()
	if h == nil {
		ep.dropped.Add(1)
		if tele != nil {
			tele.dropped.Inc()
		}
		return
	}
	ep.recv.Add(1)
	ep.recvBytes.Add(uint64(len(b)))
	if tele != nil {
		tele.recv.Inc()
		tele.recvBytes.Add(uint64(len(b)))
	}
	(*h)(from, m)
}

// Stats snapshots the endpoint's counters.
func (ep *SimEndpoint) Stats() Stats {
	return Stats{
		Sent:          ep.sent.Load(),
		SentBytes:     ep.sentBytes.Load(),
		Received:      ep.recv.Load(),
		ReceivedBytes: ep.recvBytes.Load(),
		Dropped:       ep.dropped.Load(),
	}
}

// Close detaches the endpoint: later Sends error, arrivals are
// ignored. The node stays in the simulated network (crash it there to
// model a dead machine).
func (ep *SimEndpoint) Close() error {
	ep.closed.Store(true)
	return nil
}
