// Package transport abstracts inter-peer message exchange behind one
// interface with two backends: the deterministic in-process simnet
// substrate every test and experiment runs on, and a tcp backend that
// speaks length-prefixed wire frames between OS processes over real
// sockets. Both carry the same internal/wire messages with the same
// byte accounting, so the monitor's protocols — stream delivery,
// partial aggregation, gossip detection, checkpointing — behave
// identically whether the peers share a process or a network
// (docs/TRANSPORT.md; the backend-equivalence tests pin it).
package transport

import (
	"p2pm/internal/stream"
	"p2pm/internal/wire"
)

// Handler consumes one delivered message. Handlers run synchronously
// on the delivering goroutine (simnet: the sender; tcp: the
// connection's read loop), so per-link message order is preserved.
// A handler may call Send, including back to the sender.
type Handler func(from string, m wire.Message)

// Transport is one peer's connection to the cluster: a name, a way to
// send a wire message to another named peer, and a handler for what
// arrives. Delivery is at-most-once and unordered across links —
// reliability (resend-until-ack, dedup) belongs to the protocol above,
// which is what makes the same protocol code run unchanged over the
// lossy simnet fault model and over real sockets that reset.
type Transport interface {
	// Self returns this endpoint's peer name.
	Self() string
	// Send enqueues a message to a named peer. It never blocks on the
	// network: a dead or slow peer costs queue space, not caller time,
	// and overflow is counted in Stats().Dropped. An unknown peer is
	// an error.
	Send(to string, m wire.Message) error
	// Handle installs the delivery handler. Install before traffic
	// flows; messages arriving with no handler are dropped.
	Handle(h Handler)
	// Peers lists the peer names this endpoint can Send to, sorted.
	Peers() []string
	// Stats returns a snapshot of the endpoint's traffic counters.
	Stats() Stats
	// Close releases the endpoint. Further Sends error.
	Close() error
}

// Stats is a snapshot of one endpoint's traffic.
type Stats struct {
	// Sent / SentBytes count messages handed to the substrate.
	Sent, SentBytes uint64
	// Received / ReceivedBytes count messages delivered to the handler.
	Received, ReceivedBytes uint64
	// Dropped counts messages lost at this endpoint: outbound queue
	// overflow, undecodable inbound frames, simnet link faults.
	Dropped uint64
	// Reconnects counts re-established outbound connections (tcp only).
	Reconnects uint64
}

// Link is the minimal fault-aware item-delivery surface the in-process
// control plane (internal/peer) needs from its substrate. The concrete
// simnet.Network satisfies it; peer.System talks to this seam rather
// than to simnet directly, which is what keeps the deployed-operator
// data plane portable to other substrates.
type Link interface {
	// Deliver ships an item across the from→to link under the fault
	// model, returning it latency-stamped and whether it arrived.
	Deliver(from, to string, it stream.Item) (stream.Item, bool)
	// DeliverHook returns a channel delivery hook routing items across
	// the from→to link (accounting, latency, faults).
	DeliverHook(from, to string) func(stream.Item, *stream.Queue)
	// CountTransfer accounts one control-plane message on a link.
	CountTransfer(from, to string, bytes int)
}
