package transport

import (
	"strings"
	"testing"
	"time"

	"p2pm/internal/simnet"
)

// startCluster runs one Node per peer over the given endpoints and
// returns them keyed by name.
func startCluster(t *testing.T, peers []string, cfg NodeConfig, eps map[string]Transport) map[string]*Node {
	t.Helper()
	nodes := make(map[string]*Node, len(peers))
	for _, p := range peers {
		c := cfg
		c.Self = p
		c.Peers = peers
		n, err := NewNode(c, eps[p])
		if err != nil {
			t.Fatal(err)
		}
		nodes[p] = n
	}
	for _, n := range nodes {
		n.Start()
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Stop()
		}
	})
	return nodes
}

func simCluster(t *testing.T, peers []string, cfg NodeConfig) (map[string]*Node, *SimNet) {
	t.Helper()
	sn := NewSimNet(simnet.New(simnet.Options{Seed: 7}))
	eps := make(map[string]Transport, len(peers))
	for _, p := range peers {
		eps[p] = sn.Endpoint(p)
	}
	return startCluster(t, peers, cfg, eps), sn
}

func tcpCluster(t *testing.T, peers []string, cfg NodeConfig, opts TCPOptions) map[string]*Node {
	t.Helper()
	tps := make(map[string]*TCP, len(peers))
	for _, p := range peers {
		tp, err := ListenTCP(p, "127.0.0.1:0", opts)
		if err != nil {
			t.Fatal(err)
		}
		tps[p] = tp
		t.Cleanup(func() { tp.Close() })
	}
	for _, p := range peers {
		for _, q := range peers {
			if p != q {
				tps[p].AddPeer(q, tps[q].Addr())
			}
		}
	}
	eps := make(map[string]Transport, len(peers))
	for p, tp := range tps {
		eps[p] = tp
	}
	return startCluster(t, peers, cfg, eps)
}

func waitCluster(t *testing.T, nodes map[string]*Node, d time.Duration) {
	t.Helper()
	for name, n := range nodes {
		if err := n.Wait(d); err != nil {
			t.Fatalf("node %s: %v", name, err)
		}
	}
}

func TestNodeClusterOverSimNet(t *testing.T) {
	peers := []string{"n1", "n2", "n3"}
	cfg := NodeConfig{Windows: 4, EventsPerWindow: 8, ResendEvery: 20 * time.Millisecond, HeartbeatEvery: 25 * time.Millisecond}
	nodes, _ := simCluster(t, peers, cfg)
	waitCluster(t, nodes, 10*time.Second)

	root := nodes["n1"]
	if !root.IsRoot() {
		t.Fatal("n1 should be the root (lexically smallest)")
	}
	lines := root.Results()
	if len(lines) != 4 {
		t.Fatalf("root emitted %d windows, want 4: %v", len(lines), lines)
	}
	// count over 2 sources x 8 events = 16 per window, every window.
	for w, l := range lines {
		want := "window=" + string(rune('0'+w)) + " fn=count count=16 events=16 sources=2"
		if l != want {
			t.Errorf("window %d line = %q, want %q", w, l, want)
		}
	}
	// The mirror (n2) holds one checkpoint per completed window.
	if cks := nodes["n2"].MirrorCkpts(); len(cks) != 4 {
		t.Errorf("mirror checkpoints = %v, want 4", cks)
	}
	// Both sources announced their partial stream to the root.
	defs := root.PublishedDefs()
	if len(defs) != 2 || !strings.HasPrefix(defs[0], "n2=<Stream") || !strings.HasPrefix(defs[1], "n3=<Stream") {
		t.Errorf("published defs = %v", defs)
	}
	// Heartbeats reach the root from both sources (the aggregation can
	// finish before the first probe tick, so poll).
	deadline := time.Now().Add(5 * time.Second)
	for root.AlivePeers() < 2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if alive := root.AlivePeers(); alive < 2 {
		t.Errorf("root heard %d live peers, want >= 2", alive)
	}
}

func TestNodeValueAggregatesOverSimNet(t *testing.T) {
	// Aggregates that consume values must also complete and agree with
	// a direct local fold of the same deterministic input.
	for _, fn := range []string{"sum", "min", "max", "avg", "distinct"} {
		t.Run(fn, func(t *testing.T) {
			peers := []string{"a", "b", "c"}
			cfg := NodeConfig{Fn: fn, Windows: 3, EventsPerWindow: 6, ResendEvery: 20 * time.Millisecond}
			nodes, _ := simCluster(t, peers, cfg)
			waitCluster(t, nodes, 10*time.Second)
			lines := nodes["a"].Results()
			if len(lines) != 3 {
				t.Fatalf("%s: emitted %v", fn, lines)
			}
			for _, l := range lines {
				if !strings.Contains(l, "fn="+fn) || !strings.Contains(l, "events=12") {
					t.Errorf("%s: line %q", fn, l)
				}
			}
		})
	}
}

func TestNodeExactlyOnceUnderSimnetLoss(t *testing.T) {
	// 40% loss on every link: resend-until-ack must still complete all
	// windows, and the dedup must have absorbed the retries without
	// inflating any count.
	peers := []string{"n1", "n2", "n3"}
	cfg := NodeConfig{Windows: 5, EventsPerWindow: 8, ResendEvery: 10 * time.Millisecond, HeartbeatEvery: 15 * time.Millisecond}
	sn := NewSimNet(simnet.New(simnet.Options{Seed: 11}))
	nw := sn.Net()
	eps := make(map[string]Transport, len(peers))
	for _, p := range peers {
		eps[p] = sn.Endpoint(p)
	}
	for _, p := range peers {
		for _, q := range peers {
			if p != q {
				nw.SetDrop(p, q, 0.4)
			}
		}
	}
	nodes := startCluster(t, peers, cfg, eps)
	waitCluster(t, nodes, 30*time.Second)
	lines := nodes["n1"].Results()
	if len(lines) != 5 {
		t.Fatalf("emitted %d windows under loss, want 5", len(lines))
	}
	for _, l := range lines {
		if !strings.Contains(l, "count=16") {
			t.Errorf("lossy run inflated or deflated a window: %q", l)
		}
	}
	if nodes["n1"].Dupes() == 0 {
		t.Error("40%% loss with resend produced zero duplicates — dedup untested")
	}
}

func TestNodeRejectsBadConfig(t *testing.T) {
	sn := NewSimNet(simnet.New(simnet.Options{Seed: 1}))
	ep := sn.Endpoint("a")
	if _, err := NewNode(NodeConfig{Self: "a", Peers: []string{"a"}}, ep); err == nil {
		t.Error("single-peer cluster should be rejected")
	}
	if _, err := NewNode(NodeConfig{Self: "z", Peers: []string{"a", "b"}}, ep); err == nil {
		t.Error("self outside the cluster should be rejected")
	}
	if _, err := NewNode(NodeConfig{Self: "a", Peers: []string{"a", "b"}, Fn: "median"}, ep); err == nil {
		t.Error("unknown aggregate should be rejected")
	}
}
