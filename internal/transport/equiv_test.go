package transport

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"p2pm/internal/simnet"
)

// runScenario completes the standard node scenario over the given
// backend and returns the root's emitted lines plus the mirror's
// checkpoint keys.
func runScenario(t *testing.T, backend string, cfg NodeConfig, opts TCPOptions) (lines, ckpts []string) {
	t.Helper()
	peers := []string{"n1", "n2", "n3"}
	var nodes map[string]*Node
	switch backend {
	case "simnet":
		nodes, _ = simCluster(t, peers, cfg)
	case "tcp":
		nodes = tcpCluster(t, peers, cfg, opts)
	default:
		t.Fatalf("unknown backend %q", backend)
	}
	waitCluster(t, nodes, 30*time.Second)
	return nodes["n1"].Results(), nodes["n2"].MirrorCkpts()
}

// TestBackendEquivalence is the PR's acceptance pin: the identical
// scenario run over the deterministic simnet backend and over real
// loopback TCP sockets produces byte-identical root output and mirror
// checkpoints — socket timing, reconnects, and interleaving cannot
// leak into the answer because the protocol is exactly-once and the
// merge is a commutative monoid folded in a fixed order.
func TestBackendEquivalence(t *testing.T) {
	for _, fn := range []string{"count", "sum", "avg", "distinct"} {
		t.Run(fn, func(t *testing.T) {
			cfg := NodeConfig{Fn: fn, Windows: 4, EventsPerWindow: 10,
				ResendEvery: 20 * time.Millisecond, HeartbeatEvery: 30 * time.Millisecond}
			simLines, simCkpts := runScenario(t, "simnet", cfg, TCPOptions{})
			tcpLines, tcpCkpts := runScenario(t, "tcp", cfg, TCPOptions{})
			if !reflect.DeepEqual(simLines, tcpLines) {
				t.Errorf("root output diverged across backends\nsimnet: %v\n   tcp: %v", simLines, tcpLines)
			}
			if !reflect.DeepEqual(simCkpts, tcpCkpts) {
				t.Errorf("mirror checkpoints diverged\nsimnet: %v\n   tcp: %v", simCkpts, tcpCkpts)
			}
			if len(simLines) != cfg.Windows {
				t.Fatalf("scenario incomplete: %v", simLines)
			}
		})
	}
}

// TestExactlyOnceChurnTable is the X2-style completeness table over
// both backends: on simnet, churn is injected link loss; on tcp, it is
// periodic connection kills (every live socket torn down mid-run).
// Exactly-once delivery must hold every window at 100% completeness in
// all cells.
func TestExactlyOnceChurnTable(t *testing.T) {
	if testing.Short() {
		t.Skip("churn table skipped in -short")
	}
	peers := []string{"n1", "n2", "n3"}
	cfg := NodeConfig{Windows: 5, EventsPerWindow: 8,
		ResendEvery: 10 * time.Millisecond, HeartbeatEvery: 20 * time.Millisecond}
	wantLines := 5

	t.Run("simnet-loss", func(t *testing.T) {
		for _, rate := range []float64{0.1, 0.3, 0.5} {
			t.Run(fmt.Sprintf("drop=%.1f", rate), func(t *testing.T) {
				sn := NewSimNet(simnet.New(simnet.Options{Seed: int64(rate * 100)}))
				eps := make(map[string]Transport, len(peers))
				for _, p := range peers {
					eps[p] = sn.Endpoint(p)
				}
				for _, p := range peers {
					for _, q := range peers {
						if p != q {
							sn.Net().SetDrop(p, q, rate)
						}
					}
				}
				nodes := startCluster(t, peers, cfg, eps)
				waitCluster(t, nodes, 60*time.Second)
				if got := nodes["n1"].Results(); len(got) != wantLines {
					t.Errorf("completeness %d/%d windows at drop=%.1f", len(got), wantLines, rate)
				}
			})
		}
	})

	t.Run("tcp-conn-kills", func(t *testing.T) {
		for _, killEvery := range []time.Duration{150 * time.Millisecond, 60 * time.Millisecond} {
			t.Run(killEvery.String(), func(t *testing.T) {
				opts := TCPOptions{BackoffMin: 2 * time.Millisecond, BackoffMax: 20 * time.Millisecond}
				tps := make(map[string]*TCP, len(peers))
				for _, p := range peers {
					tp, err := ListenTCP(p, "127.0.0.1:0", opts)
					if err != nil {
						t.Fatal(err)
					}
					tps[p] = tp
					t.Cleanup(func() { tp.Close() })
				}
				for _, p := range peers {
					for _, q := range peers {
						if p != q {
							tps[p].AddPeer(q, tps[q].Addr())
						}
					}
				}
				eps := make(map[string]Transport, len(peers))
				for p, tp := range tps {
					eps[p] = tp
				}
				nodes := startCluster(t, peers, cfg, eps)
				stop := make(chan struct{})
				defer close(stop)
				go func() {
					tick := time.NewTicker(killEvery)
					defer tick.Stop()
					for {
						select {
						case <-stop:
							return
						case <-tick.C:
							for _, tp := range tps {
								tp.DropConnections()
							}
						}
					}
				}()
				waitCluster(t, nodes, 60*time.Second)
				got := nodes["n1"].Results()
				if len(got) != wantLines {
					t.Fatalf("completeness %d/%d windows with kills every %v", len(got), wantLines, killEvery)
				}
				// And the answers are still the loss-free ones.
				clean, _ := runScenario(t, "simnet", cfg, TCPOptions{})
				if !reflect.DeepEqual(got, clean) {
					t.Errorf("churned tcp output diverged from clean run\n got %v\nwant %v", got, clean)
				}
			})
		}
	})
}
