package transport

import (
	"p2pm/internal/telemetry"
	"p2pm/internal/wire"
)

// epMetrics are one endpoint's registered telemetry handles. A nil
// *epMetrics means the endpoint is not instrumented — the hot paths
// pay one pointer test and nothing else.
//
// Every series carries backend= (sim|tcp) and peer= (the endpoint's own
// name), so a multi-endpoint process (every simnet test, the p2pmon
// net root) exports per-peer traffic without colliding.
type epMetrics struct {
	sent, sentBytes, recv, recvBytes, dropped, reconnects *telemetry.Counter
}

// newEPMetrics registers the endpoint's series and mirrors its wire
// decode stats into the registry. Returns nil when reg is nil.
func newEPMetrics(reg *telemetry.Registry, backend, self string, decode *wire.Stats) *epMetrics {
	if reg == nil {
		return nil
	}
	ls := []telemetry.Label{telemetry.L("backend", backend), telemetry.L("peer", self)}
	m := &epMetrics{
		sent:       reg.Counter("transport_sent_total", ls...),
		sentBytes:  reg.Counter("transport_sent_bytes_total", ls...),
		recv:       reg.Counter("transport_recv_total", ls...),
		recvBytes:  reg.Counter("transport_recv_bytes_total", ls...),
		dropped:    reg.Counter("transport_dropped_total", ls...),
		reconnects: reg.Counter("transport_reconnects_total", ls...),
	}
	if decode != nil {
		decode.Mirror(
			reg.Counter("wire_decoded_total", ls...),
			reg.Counter("wire_dropped_total", ls...),
		)
	}
	return m
}
