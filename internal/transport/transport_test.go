package transport

import (
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"p2pm/internal/simnet"
	"p2pm/internal/wire"
)

// collector is a test handler accumulating deliveries.
type collector struct {
	mu   sync.Mutex
	got  []wire.Message
	from []string
	cond *sync.Cond
}

func newCollector() *collector {
	c := &collector{}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *collector) handle(from string, m wire.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.got = append(c.got, m)
	c.from = append(c.from, from)
	c.cond.Broadcast()
}

// waitN blocks until n messages arrived or the deadline passes.
func (c *collector) waitN(t *testing.T, n int, d time.Duration) []wire.Message {
	t.Helper()
	deadline := time.Now().Add(d)
	timer := time.AfterFunc(d, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer timer.Stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.got) < n && time.Now().Before(deadline) {
		c.cond.Wait()
	}
	if len(c.got) < n {
		t.Fatalf("got %d messages, want %d", len(c.got), n)
	}
	return append([]wire.Message(nil), c.got...)
}

// ---------------------------------------------------------------------
// SimNet backend

func TestSimNetDelivers(t *testing.T) {
	sn := NewSimNet(simnet.New(simnet.Options{Seed: 1}))
	a := sn.Endpoint("a")
	b := sn.Endpoint("b")
	c := newCollector()
	b.Handle(c.handle)
	if err := a.Send("b", &wire.Partial{Fn: "count", Window: 2, Source: "a", Count: 3, State: "3"}); err != nil {
		t.Fatal(err)
	}
	got := c.waitN(t, 1, time.Second)
	p, ok := got[0].(*wire.Partial)
	if !ok || p.Window != 2 || p.State != "3" {
		t.Fatalf("delivered %#v", got[0])
	}
	if c.from[0] != "a" {
		t.Errorf("from = %q, want a", c.from[0])
	}
	// Byte accounting landed on the simulated link.
	if ls := sn.Net().Link("a", "b"); ls.Messages != 1 || ls.Bytes == 0 {
		t.Errorf("link a->b = %+v, want 1 accounted message", ls)
	}
	if st := a.Stats(); st.Sent != 1 || st.Dropped != 0 {
		t.Errorf("sender stats %+v", st)
	}
	if st := b.Stats(); st.Received != 1 {
		t.Errorf("receiver stats %+v", st)
	}
}

func TestSimNetFaultsDrop(t *testing.T) {
	nw := simnet.New(simnet.Options{Seed: 1})
	sn := NewSimNet(nw)
	a := sn.Endpoint("a")
	b := sn.Endpoint("b")
	c := newCollector()
	b.Handle(c.handle)
	if err := nw.Crash("b"); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", &wire.Probe{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.Dropped != 1 {
		t.Errorf("sender dropped = %d, want 1 (crashed target)", st.Dropped)
	}
	if err := nw.Recover("b"); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", &wire.Probe{Seq: 2}); err != nil {
		t.Fatal(err)
	}
	got := c.waitN(t, 1, time.Second)
	if p := got[0].(*wire.Probe); p.Seq != 2 {
		t.Errorf("delivered probe %d, want 2 (probe 1 was lost to the crash)", p.Seq)
	}
}

func TestSimNetUnknownPeerAndClose(t *testing.T) {
	sn := NewSimNet(simnet.New(simnet.Options{Seed: 1}))
	a := sn.Endpoint("a")
	if err := a.Send("ghost", &wire.Probe{}); err == nil {
		t.Error("send to unknown peer should error")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	sn.Endpoint("b")
	if err := a.Send("b", &wire.Probe{}); err == nil {
		t.Error("send on closed endpoint should error")
	}
}

// ---------------------------------------------------------------------
// TCP backend

// tcpPair builds two connected loopback endpoints.
func tcpPair(t *testing.T, opts TCPOptions) (*TCP, *TCP) {
	t.Helper()
	a, err := ListenTCP("a", "127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ListenTCP("b", "127.0.0.1:0", opts)
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	a.AddPeer("b", b.Addr())
	b.AddPeer("a", a.Addr())
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestTCPDeliversBothWays(t *testing.T) {
	a, b := tcpPair(t, TCPOptions{})
	ca, cb := newCollector(), newCollector()
	a.Handle(ca.handle)
	b.Handle(cb.handle)
	for i := 1; i <= 5; i++ {
		if err := a.Send("b", &wire.Item{Stream: "s1@a", Seq: uint64(i), XML: "<r/>"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Send("a", &wire.Ack{Seq: 9}); err != nil {
		t.Fatal(err)
	}
	got := cb.waitN(t, 5, 5*time.Second)
	for i, m := range got {
		it, ok := m.(*wire.Item)
		if !ok || it.Seq != uint64(i+1) {
			t.Fatalf("message %d = %#v, want item seq %d (per-link order preserved)", i, m, i+1)
		}
	}
	back := ca.waitN(t, 1, 5*time.Second)
	if ack, ok := back[0].(*wire.Ack); !ok || ack.Seq != 9 {
		t.Fatalf("reverse message %#v", back[0])
	}
	if cb.from[0] != "a" {
		t.Errorf("hello attribution: from = %q, want a", cb.from[0])
	}
}

func TestTCPReconnectsAfterConnKill(t *testing.T) {
	a, b := tcpPair(t, TCPOptions{BackoffMin: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond})
	cb := newCollector()
	b.Handle(cb.handle)
	if err := a.Send("b", &wire.Probe{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	cb.waitN(t, 1, 5*time.Second)
	// Kill every live connection; the writer must re-dial and later
	// traffic must flow.
	a.DropConnections()
	b.DropConnections()
	for i := 2; i <= 4; i++ {
		if err := a.Send("b", &wire.Probe{Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := cb.waitN(t, 4, 10*time.Second)
	if p := got[3].(*wire.Probe); p.Seq != 4 {
		t.Fatalf("last probe %d, want 4", p.Seq)
	}
	if st := a.Stats(); st.Reconnects < 2 {
		t.Errorf("reconnects = %d, want >= 2 (initial dial + re-dial)", st.Reconnects)
	}
}

func TestTCPQueueOverflowDropsNotBlocks(t *testing.T) {
	// Peer address points at a listener that was closed: dials fail,
	// the queue fills, and Send must keep returning without blocking.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := dead.Addr().String()
	dead.Close()
	a, err := ListenTCP("a", "127.0.0.1:0", TCPOptions{QueueDepth: 4, BackoffMin: time.Millisecond, BackoffMax: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.AddPeer("gone", addr)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			a.Send("gone", &wire.Probe{Seq: uint64(i)}) //nolint:errcheck // overflow is the point
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Send blocked on a dead peer")
	}
	if st := a.Stats(); st.Dropped == 0 {
		t.Errorf("expected queue-overflow drops, stats %+v", st)
	}
}

func TestTCPRefusesForeignCluster(t *testing.T) {
	a, err := ListenTCP("a", "127.0.0.1:0", TCPOptions{Cluster: "demo"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	ca := newCollector()
	a.Handle(ca.handle)
	// A peer from another cluster dials and sends: nothing may reach
	// the handler.
	x, err := ListenTCP("x", "127.0.0.1:0", TCPOptions{Cluster: "other", BackoffMin: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	x.AddPeer("a", a.Addr())
	x.Send("a", &wire.Probe{Seq: 1}) //nolint:errcheck
	time.Sleep(200 * time.Millisecond)
	ca.mu.Lock()
	n := len(ca.got)
	ca.mu.Unlock()
	if n != 0 {
		t.Errorf("foreign-cluster message reached the handler")
	}
}

func TestTCPGarbageFrameCountedDropped(t *testing.T) {
	a, err := ListenTCP("a", "127.0.0.1:0", TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	ca := newCollector()
	a.Handle(ca.handle)
	conn, err := net.Dial("tcp", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	write := func(payload []byte) {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
		conn.Write(hdr[:])  //nolint:errcheck
		conn.Write(payload) //nolint:errcheck
	}
	// Valid hello, then a garbage frame, then a valid message: the
	// garbage lands in Dropped, the valid message still arrives.
	write(wire.Encode(&wire.Hello{Peer: "z", Proto: wire.ProtoVersion, Cluster: "p2pm"}))
	write([]byte{0xde, 0xad, 0xbe, 0xef})
	write(wire.Encode(&wire.Probe{Seq: 3}))
	got := ca.waitN(t, 1, 5*time.Second)
	if p, ok := got[0].(*wire.Probe); !ok || p.Seq != 3 {
		t.Fatalf("got %#v", got[0])
	}
	if st := a.Stats(); st.Dropped != 1 {
		t.Errorf("dropped = %d, want 1 (the garbage frame)", st.Dropped)
	}
}

func TestTCPUnknownPeerAndClosedSend(t *testing.T) {
	a, err := ListenTCP("a", "127.0.0.1:0", TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("ghost", &wire.Probe{}); err == nil {
		t.Error("send to unknown peer should error")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("ghost", &wire.Probe{}); err == nil {
		t.Error("send on closed endpoint should error")
	}
	if err := a.Close(); err != nil {
		t.Error("double close should be a no-op:", err)
	}
}
