// Package soap simulates the SOAP-RPC Web services layer that P2PM's WS
// alerters monitor. The paper implements alerters as Axis handlers that
// intercept inbound/outbound calls and annotate the SOAP envelope with
// call identifiers, caller/callee identities and timestamps; here an
// Endpoint plays the role of the Axis stack on one peer, and hooks play
// the role of handlers.
package soap

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"p2pm/internal/simnet"
	"p2pm/internal/xmltree"
)

// Exchange is one completed call/response pair as both sides observe it —
// the same "call" is an out-call for the caller and an in-call for the
// callee (Section 2).
type Exchange struct {
	CallID       string
	Method       string
	Caller       string // caller peer (DNS-style name)
	Callee       string // callee peer
	CallTime     time.Duration
	ResponseTime time.Duration
	Params       *xmltree.Node
	Result       *xmltree.Node
	Fault        string
}

// Duration returns the observed call duration.
func (x Exchange) Duration() time.Duration { return x.ResponseTime - x.CallTime }

// Envelope renders the exchange as a SOAP-style envelope tree, the payload
// alerters embed in alerts.
func (x Exchange) Envelope() *xmltree.Node {
	body := xmltree.Elem("Body")
	call := xmltree.Elem(x.Method)
	if x.Params != nil {
		call.Append(x.Params.Clone())
	}
	body.Append(call)
	if x.Result != nil {
		res := xmltree.Elem(x.Method + "Response")
		res.Append(x.Result.Clone())
		body.Append(res)
	}
	if x.Fault != "" {
		body.Append(xmltree.ElemText("Fault", x.Fault))
	}
	env := xmltree.Elem("Envelope", body)
	env.SetAttr("xmlns", "http://schemas.xmlsoap.org/soap/envelope/")
	return env
}

// Handler implements a service method.
type Handler func(params *xmltree.Node) (*xmltree.Node, error)

// Hook observes an exchange (an Axis handler in the paper).
type Hook func(Exchange)

// Fabric connects the endpoints of all peers so calls can be routed by
// peer name; it also owns the global call-ID sequence.
type Fabric struct {
	nw     *simnet.Network
	mu     sync.RWMutex
	eps    map[string]*Endpoint
	callID atomic.Uint64
}

// NewFabric builds an empty service fabric over a simulated network.
func NewFabric(nw *simnet.Network) *Fabric {
	return &Fabric{nw: nw, eps: make(map[string]*Endpoint)}
}

// Endpoint returns (creating if needed) the SOAP endpoint of a peer.
func (f *Fabric) Endpoint(peer string) *Endpoint {
	f.mu.Lock()
	defer f.mu.Unlock()
	ep := f.eps[peer]
	if ep == nil {
		f.nw.AddNode(peer)
		ep = &Endpoint{fabric: f, peer: peer, services: make(map[string]*service)}
		f.eps[peer] = ep
	}
	return ep
}

func (f *Fabric) lookup(peer string) *Endpoint {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.eps[peer]
}

func (f *Fabric) nextCallID() string {
	return fmt.Sprintf("call-%d", f.callID.Add(1))
}

// Endpoint is one peer's SOAP stack: it hosts services and issues calls.
type Endpoint struct {
	fabric *Fabric
	peer   string

	mu       sync.RWMutex
	services map[string]*service
	inHooks  []Hook
	outHooks []Hook
}

type service struct {
	handler Handler
	latency func() time.Duration
}

// Peer returns the owning peer name.
func (e *Endpoint) Peer() string { return e.peer }

// Register installs a service method. latency, if non-nil, yields the
// simulated per-call processing time (it may be randomized to model slow
// answers).
func (e *Endpoint) Register(method string, h Handler, latency func() time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.services[method] = &service{handler: h, latency: latency}
}

// OnInbound adds an inbound-call hook (the inCOM alerter attaches here).
func (e *Endpoint) OnInbound(h Hook) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.inHooks = append(e.inHooks, h)
}

// OnOutbound adds an outbound-call hook (the outCOM alerter).
func (e *Endpoint) OnOutbound(h Hook) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.outHooks = append(e.outHooks, h)
}

// Invoke performs a synchronous SOAP-RPC call to method on the callee
// peer. The virtual response time accounts for two network traversals
// plus the service's processing latency. Both sides' hooks observe the
// completed exchange with the same call identifier.
func (e *Endpoint) Invoke(callee, method string, params *xmltree.Node) (*xmltree.Node, error) {
	f := e.fabric
	target := f.lookup(callee)
	callTime := f.nw.Clock().Now()
	x := Exchange{
		CallID:   f.nextCallID(),
		Method:   method,
		Caller:   e.peer,
		Callee:   callee,
		CallTime: callTime,
		Params:   params,
	}
	rtt := f.nw.Latency(e.peer, callee) + f.nw.Latency(callee, e.peer)
	if params != nil {
		f.nw.CountTransfer(e.peer, callee, params.SerializedSize())
	} else {
		f.nw.CountTransfer(e.peer, callee, len(method))
	}

	var err error
	if target == nil {
		x.Fault = fmt.Sprintf("no endpoint for peer %q", callee)
		err = fmt.Errorf("soap: %s", x.Fault)
		x.ResponseTime = callTime + rtt
	} else {
		target.mu.RLock()
		svc := target.services[method]
		target.mu.RUnlock()
		if svc == nil {
			x.Fault = fmt.Sprintf("no such method %q at %s", method, callee)
			err = fmt.Errorf("soap: %s", x.Fault)
			x.ResponseTime = callTime + rtt
		} else {
			var proc time.Duration
			if svc.latency != nil {
				proc = svc.latency()
			}
			res, herr := svc.handler(params)
			if herr != nil {
				x.Fault = herr.Error()
				err = herr
			}
			x.Result = res
			x.ResponseTime = callTime + rtt + proc
			if res != nil {
				f.nw.CountTransfer(callee, e.peer, res.SerializedSize())
			}
		}
	}

	// Fire hooks: the callee sees an in-call, the caller an out-call.
	if target != nil {
		target.mu.RLock()
		hooks := append([]Hook(nil), target.inHooks...)
		target.mu.RUnlock()
		for _, h := range hooks {
			h(x)
		}
	}
	e.mu.RLock()
	hooks := append([]Hook(nil), e.outHooks...)
	e.mu.RUnlock()
	for _, h := range hooks {
		h(x)
	}
	return x.Result, err
}
