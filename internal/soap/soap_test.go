package soap

import (
	"fmt"
	"testing"
	"time"

	"p2pm/internal/simnet"
	"p2pm/internal/xmltree"
)

func fabric() (*Fabric, *simnet.Network) {
	nw := simnet.New(simnet.DefaultOptions())
	return NewFabric(nw), nw
}

func TestInvokeRoundTrip(t *testing.T) {
	f, _ := fabric()
	meteo := f.Endpoint("meteo.com")
	meteo.Register("GetTemperature", func(params *xmltree.Node) (*xmltree.Node, error) {
		return xmltree.ElemText("temp", "21"), nil
	}, nil)
	a := f.Endpoint("a.com")
	res, err := a.Invoke("meteo.com", "GetTemperature", xmltree.ElemText("city", "paris"))
	if err != nil {
		t.Fatal(err)
	}
	if res.InnerText() != "21" {
		t.Errorf("res = %s", res)
	}
}

func TestBothSidesObserveSameCallID(t *testing.T) {
	f, _ := fabric()
	meteo := f.Endpoint("meteo.com")
	meteo.Register("GetTemperature", func(*xmltree.Node) (*xmltree.Node, error) {
		return xmltree.ElemText("temp", "21"), nil
	}, nil)
	a := f.Endpoint("a.com")
	var inX, outX []Exchange
	meteo.OnInbound(func(x Exchange) { inX = append(inX, x) })
	a.OnOutbound(func(x Exchange) { outX = append(outX, x) })
	if _, err := a.Invoke("meteo.com", "GetTemperature", nil); err != nil {
		t.Fatal(err)
	}
	if len(inX) != 1 || len(outX) != 1 {
		t.Fatalf("hooks fired in=%d out=%d", len(inX), len(outX))
	}
	if inX[0].CallID != outX[0].CallID {
		t.Errorf("callIDs differ: %s vs %s", inX[0].CallID, outX[0].CallID)
	}
	if inX[0].Caller != "a.com" || inX[0].Callee != "meteo.com" {
		t.Errorf("identities wrong: %+v", inX[0])
	}
}

func TestCallIDsUnique(t *testing.T) {
	f, _ := fabric()
	m := f.Endpoint("m")
	m.Register("ping", func(*xmltree.Node) (*xmltree.Node, error) { return xmltree.Elem("pong"), nil }, nil)
	a := f.Endpoint("a")
	var ids []string
	a.OnOutbound(func(x Exchange) { ids = append(ids, x.CallID) })
	for i := 0; i < 5; i++ {
		if _, err := a.Invoke("m", "ping", nil); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[string]bool)
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate callID %s", id)
		}
		seen[id] = true
	}
}

func TestServiceLatencyShapesResponseTime(t *testing.T) {
	f, nw := fabric()
	m := f.Endpoint("meteo.com")
	m.Register("GetTemperature", func(*xmltree.Node) (*xmltree.Node, error) {
		return xmltree.ElemText("temp", "21"), nil
	}, func() time.Duration { return 12 * time.Second })
	a := f.Endpoint("a.com")
	var got Exchange
	a.OnOutbound(func(x Exchange) { got = x })
	if _, err := a.Invoke("meteo.com", "GetTemperature", nil); err != nil {
		t.Fatal(err)
	}
	rtt := nw.Latency("a.com", "meteo.com") + nw.Latency("meteo.com", "a.com")
	if got.Duration() != rtt+12*time.Second {
		t.Errorf("duration = %v, want %v", got.Duration(), rtt+12*time.Second)
	}
	if got.Duration() <= 10*time.Second {
		t.Error("slow call should exceed the paper's 10s threshold")
	}
}

func TestInvokeUnknownPeerAndMethod(t *testing.T) {
	f, _ := fabric()
	a := f.Endpoint("a")
	var outX []Exchange
	a.OnOutbound(func(x Exchange) { outX = append(outX, x) })
	if _, err := a.Invoke("ghost", "ping", nil); err == nil {
		t.Error("unknown peer should error")
	}
	f.Endpoint("b")
	if _, err := a.Invoke("b", "nope", nil); err == nil {
		t.Error("unknown method should error")
	}
	if len(outX) != 2 || outX[0].Fault == "" || outX[1].Fault == "" {
		t.Errorf("faults not observed: %+v", outX)
	}
}

func TestHandlerErrorBecomesFault(t *testing.T) {
	f, _ := fabric()
	m := f.Endpoint("m")
	m.Register("bad", func(*xmltree.Node) (*xmltree.Node, error) {
		return nil, fmt.Errorf("backend down")
	}, nil)
	a := f.Endpoint("a")
	var x Exchange
	m.OnInbound(func(e Exchange) { x = e })
	if _, err := a.Invoke("m", "bad", nil); err == nil {
		t.Error("handler error should propagate")
	}
	if x.Fault != "backend down" {
		t.Errorf("fault = %q", x.Fault)
	}
}

func TestEnvelopeShape(t *testing.T) {
	x := Exchange{
		CallID: "call-1", Method: "GetTemperature",
		Caller: "a.com", Callee: "meteo.com",
		Params: xmltree.ElemText("city", "paris"),
		Result: xmltree.ElemText("temp", "21"),
	}
	env := x.Envelope()
	if env.Label != "Envelope" {
		t.Fatalf("label = %s", env.Label)
	}
	body := env.Child("Body")
	if body == nil || body.Child("GetTemperature") == nil || body.Child("GetTemperatureResponse") == nil {
		t.Errorf("envelope = %s", env)
	}
	// Fault rendering.
	x.Fault = "oops"
	if x.Envelope().Child("Body").Child("Fault") == nil {
		t.Error("fault missing from envelope")
	}
}

func TestInvokeCountsTraffic(t *testing.T) {
	f, nw := fabric()
	m := f.Endpoint("m")
	m.Register("echo", func(p *xmltree.Node) (*xmltree.Node, error) { return p.Clone(), nil }, nil)
	a := f.Endpoint("a")
	if _, err := a.Invoke("m", "echo", xmltree.ElemText("x", "hello")); err != nil {
		t.Fatal(err)
	}
	tot := nw.Totals()
	if tot.Messages != 2 { // request + response
		t.Errorf("messages = %d", tot.Messages)
	}
	if tot.Bytes == 0 {
		t.Error("bytes not counted")
	}
}

func TestEndpointIdempotent(t *testing.T) {
	f, _ := fabric()
	if f.Endpoint("a") != f.Endpoint("a") {
		t.Error("Endpoint should be idempotent per peer")
	}
}
