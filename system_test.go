package p2pm_test

import (
	"fmt"
	"testing"
	"time"

	"p2pm"
	"p2pm/internal/rss"
	"p2pm/internal/workload"
	"p2pm/internal/xmltree"
)

// TestEverythingTogether is the capstone integration test: one system
// running every subscription family at once — WS QoS joins, fault
// watching, RSS diffing, windowed grouping, dynamic membership, stream
// reuse and subsumption — while a mixed workload drives it. It guards
// against cross-feature interference that per-feature tests cannot see.
func TestEverythingTogether(t *testing.T) {
	sys := p2pm.MustSystem(p2pm.DefaultConfig())

	// --- monitored world ---
	meteo := sys.MustAddPeer("meteo.com")
	calls := 0
	meteo.Endpoint().Register("GetTemperature",
		func(*xmltree.Node) (*xmltree.Node, error) { return xmltree.ElemText("temp", "21"), nil },
		func() time.Duration {
			calls++
			if calls%3 == 0 {
				return 15 * time.Second
			}
			return 50 * time.Millisecond
		})
	flakyCalls := 0
	meteo.Endpoint().Register("GetForecast",
		func(*xmltree.Node) (*xmltree.Node, error) {
			flakyCalls++
			if flakyCalls%2 == 0 {
				return nil, fmt.Errorf("forecast backend down")
			}
			return xmltree.Elem("forecast"), nil
		}, nil)
	sys.MustAddPeer("a.com")
	sys.MustAddPeer("b.com")
	portal := sys.MustAddPeer("portal.com")
	churn := workload.NewFeedChurn(17, "portal", 4)
	portal.RegisterFeed("http://portal.com/feed", churn.Fetch())

	// --- monitoring tasks ---
	noc := sys.MustAddPeer("noc")

	qos, err := noc.Subscribe(`for $c1 in outCOM(<p>http://a.com</p><p>http://b.com</p>),
    $c2 in inCOM(<p>http://meteo.com</p>)
let $duration := $c1.responseTimestamp - $c1.callTimestamp
where $duration > 10 and
      $c1.callMethod = "GetTemperature" and
      $c1.callee = "http://meteo.com" and
      $c1.callId = $c2.callId
return <incident type="slowAnswer"><client>{$c1.caller}</client></incident>
by publish as channel "alertQoS"`)
	if err != nil {
		t.Fatal(err)
	}

	faults, err := noc.Subscribe(`for $e in inCOM(<p>meteo.com</p>)
where $e.fault != ""
return <failure m="{$e.callMethod}"/>
by publish as channel "failures" and email "oncall@meteo.com"`)
	if err != nil {
		t.Fatal(err)
	}
	// The fault task's alerter rides on the QoS task's inCOM stream.
	if faults.Reuse == nil || len(faults.Reuse.Mappings) == 0 {
		t.Error("fault task should reuse the inCOM alerter")
	}

	// Subsumption on top of the fault stream: forecast faults only.
	forecastFaults, err := noc.Subscribe(`for $e in inCOM(<p>meteo.com</p>)
where $e.fault != "" and $e.callMethod = "GetForecast"
return $e by publish as channel "forecastFailures"`)
	if err != nil {
		t.Fatal(err)
	}

	rates, err := noc.Subscribe(`for $e in inCOM(<p>meteo.com</p>)
return <call m="{$e.callMethod}"/>
group on "m" window "1m"
by publish as channel "rates"`)
	if err != nil {
		t.Fatal(err)
	}

	freshEntries, err := noc.Subscribe(`for $r in rssCOM(<p>portal.com</p>)
where $r.change = "add"
return $r by publish as channel "fresh"`)
	if err != nil {
		t.Fatal(err)
	}

	membership, err := noc.Subscribe(`for $j in areRegistered(<p>dht</p>)
for $c in inCOM($j)
where $c.callMethod = "Late"
return <late callee="{$c.callee}"/>
by publish as channel "lateJoiners"`)
	if err != nil {
		t.Fatal(err)
	}

	// --- workload ---
	a := sys.Peer("a.com").Endpoint()
	b := sys.Peer("b.com").Endpoint()
	const rounds = 9
	for i := 0; i < rounds; i++ {
		caller := a
		if i%2 == 1 {
			caller = b
		}
		if _, err := caller.Invoke("meteo.com", "GetTemperature", nil); err != nil {
			t.Fatal(err)
		}
		caller.Invoke("meteo.com", "GetForecast", nil) // errors expected
		sys.Net.Clock().Advance(20 * time.Second)
	}
	// Feed churn with polling.
	adds := 0
	for i := 0; i < 12; i++ {
		if churn.Step() == rss.Added {
			adds++
		}
		if _, err := sys.Poll(); err != nil {
			t.Fatal(err)
		}
	}
	// A peer joins late and receives monitored traffic.
	late := sys.MustAddPeer("late.com")
	late.Endpoint().Register("Late", func(*xmltree.Node) (*xmltree.Node, error) {
		return xmltree.Elem("ok"), nil
	}, nil)
	deadline := time.Now().Add(2 * time.Second)
	for membership.DynEventsProcessed() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if _, err := a.Invoke("late.com", "Late", nil); err != nil {
		t.Fatal(err)
	}

	// --- teardown & assertions ---
	for _, task := range []*p2pm.Task{qos, faults, forecastFaults, rates, freshEntries, membership} {
		task.Stop()
	}

	if got := len(qos.Results().Drain()); got != rounds/3 {
		t.Errorf("QoS incidents = %d, want %d", got, rounds/3)
	}
	wantFaults := rounds / 2 // every second GetForecast fails
	if got := len(faults.Results().Drain()); got != wantFaults {
		t.Errorf("faults = %d, want %d", got, wantFaults)
	}
	if got := len(forecastFaults.Results().Drain()); got != wantFaults {
		t.Errorf("forecast faults = %d, want %d", got, wantFaults)
	}
	rateRows := rates.Results().Drain()
	total := 0
	for _, r := range rateRows {
		var n int
		fmt.Sscanf(r.Tree.AttrOr("count", "0"), "%d", &n)
		total += n
	}
	if total != 2*rounds { // GetTemperature + GetForecast per round
		t.Errorf("grouped call count = %d, want %d", total, 2*rounds)
	}
	if got := len(freshEntries.Results().Drain()); got != adds {
		t.Errorf("fresh entries = %d, want %d", got, adds)
	}
	if got := len(membership.Results().Drain()); got != 1 {
		t.Errorf("late-joiner calls = %d, want 1", got)
	}
}
